(* Persistent per-digest wall-time estimates.

   One small flat text file, schema-versioned like [Run_cache]:

     DBM-COST-MODEL 1\n
     <version>\n
     <entry count>\n
     <16-hex FNV-1a checksum of the entry lines>\n
     <digest> <ewma_ms> <observations>\n
     ...

   Estimates are an exponentially-weighted moving average of observed
   wall times, so the model tracks drift (code changes, host changes)
   without unbounded history.  EWMA values are written as hexadecimal
   float literals ([%h]) so a save/load roundtrip is exact.

   Anything malformed — wrong magic, wrong version, bad checksum, short
   file, unparseable line — loads as an empty model, never an error:
   the cost model only orders work, so losing it costs scheduling
   quality for one regeneration, not correctness. *)

type entry = { mutable ewma_ms : float; mutable observations : int }
type t = { path : string; version : string; table : (string, entry) Hashtbl.t; mutex : Mutex.t }

let magic = "DBM-COST-MODEL 1"

(* Weight of the newest observation.  High enough to follow genuine
   drift within a few runs, low enough that one noisy wall time cannot
   invert the LPT order of two runs an order of magnitude apart. *)
let ewma_alpha = 0.3

let encode_entries t =
  let buf = Buffer.create 256 in
  (* Sorted for a canonical encoding: the file diffs cleanly and the
     checksum does not depend on hash-table iteration order. *)
  Hashtbl.fold (fun digest e acc -> (digest, e) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (digest, e) ->
         Buffer.add_string buf (Printf.sprintf "%s %h %d\n" digest e.ewma_ms e.observations));
  Buffer.contents buf

let decode t s =
  match
    let e1 = String.index_from s 0 '\n' in
    let e2 = String.index_from s (e1 + 1) '\n' in
    let e3 = String.index_from s (e2 + 1) '\n' in
    let e4 = String.index_from s (e3 + 1) '\n' in
    let header lo hi = String.sub s lo (hi - lo) in
    if header 0 e1 <> magic || header (e1 + 1) e2 <> t.version then None
    else
      let count = int_of_string (header (e2 + 1) e3) in
      let body = String.sub s (e4 + 1) (String.length s - e4 - 1) in
      if count < 0 || not (String.equal (Digest.fnv64_hex body) (header (e3 + 1) e4)) then None
      else begin
        let lines = String.split_on_char '\n' body in
        let parsed = ref 0 in
        List.iter
          (fun line ->
            if line <> "" then
              match String.split_on_char ' ' line with
              | [ digest; ewma; obs ] ->
                let ewma_ms = float_of_string ewma in
                let observations = int_of_string obs in
                if not (Float.is_finite ewma_ms) || observations < 1 then failwith "bad entry";
                Hashtbl.replace t.table digest { ewma_ms; observations };
                incr parsed
              | _ -> failwith "bad entry")
          lines;
        if !parsed <> count then None else Some ()
      end
  with
  | r -> r
  | exception _ -> None

let load ~path ~version =
  let t = { path; version; table = Hashtbl.create 128; mutex = Mutex.create () } in
  (match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> ()
  | s -> if decode t s = None then Hashtbl.reset t.table);
  t

let in_memory ~version = { path = ""; version; table = Hashtbl.create 128; mutex = Mutex.create () }

let path t = t.path

let size t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

let estimate t ~digest =
  Mutex.lock t.mutex;
  let r = match Hashtbl.find_opt t.table digest with Some e -> Some e.ewma_ms | None -> None in
  Mutex.unlock t.mutex;
  r

let observations t ~digest =
  Mutex.lock t.mutex;
  let r = match Hashtbl.find_opt t.table digest with Some e -> e.observations | None -> 0 in
  Mutex.unlock t.mutex;
  r

let observe t ~digest ~wall_ms =
  if Float.is_finite wall_ms && wall_ms >= 0.0 then begin
    Mutex.lock t.mutex;
    (match Hashtbl.find_opt t.table digest with
    | Some e ->
      e.ewma_ms <- (ewma_alpha *. wall_ms) +. ((1.0 -. ewma_alpha) *. e.ewma_ms);
      e.observations <- e.observations + 1
    | None -> Hashtbl.replace t.table digest { ewma_ms = wall_ms; observations = 1 });
    Mutex.unlock t.mutex
  end

let tmp_counter = Atomic.make 0

let save t =
  if t.path <> "" then begin
    Mutex.lock t.mutex;
    let body = encode_entries t in
    let count = Hashtbl.length t.table in
    Mutex.unlock t.mutex;
    let s =
      Printf.sprintf "%s\n%s\n%d\n%s\n%s" magic t.version count (Digest.fnv64_hex body) body
    in
    let dir = Filename.dirname t.path in
    (if dir <> "" && not (Sys.file_exists dir) then try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    let tmp =
      Printf.sprintf "%s.%d.%d.tmp" t.path
        ((Domain.self () :> int))
        (Atomic.fetch_and_add tmp_counter 1)
    in
    match
      Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc s);
      Sys.rename tmp t.path
    with
    | () -> ()
    | exception Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())
  end
