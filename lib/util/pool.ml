type t = {
  requested : int;
  jobs : int; (* effective: clamped to host cores unless oversubscribed *)
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_ready : Condition.t; (* something was enqueued, or shutdown began *)
  all_done : Condition.t; (* some map_ordered call finished its last chunk *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t array;
}

let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.shutting_down do
    Condition.wait t.work_ready t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* shutting down *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ?jobs ?(allow_oversubscribe = false) () =
  let requested = match jobs with None -> default_jobs () | Some j -> j in
  if requested < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  (* Spawning more domains than cores makes every domain slower (OCaml
     runtime coordination scales with the domain count), so a request
     beyond the host is clamped unless the caller explicitly insists. *)
  let jobs = if allow_oversubscribe then requested else min requested (default_jobs ()) in
  let t =
    {
      requested;
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      all_done = Condition.create ();
      shutting_down = false;
      workers = [||];
    }
  in
  (* The caller's own domain works too, so spawn one fewer. *)
  if jobs > 1 then t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let requested_jobs t = t.requested

(* Explicit left-to-right application: this is the serial path that
   [--jobs 1] promises to reproduce bit-for-bit, so the evaluation order
   must not depend on [List.map]'s. *)
let serial_map xs ~f = List.rev (List.fold_left (fun acc x -> f x :: acc) [] xs)

let map_ordered t xs ~f =
  if t.jobs = 1 then serial_map xs ~f
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    if n = 0 then []
    else begin
      let results : ('b, exn) result option array = Array.make n None in
      let remaining = ref n in
      let chunk = max 1 (n / (t.jobs * 4)) in
      let run_chunk lo hi () =
        for i = lo to hi - 1 do
          results.(i) <- Some (try Ok (f items.(i)) with e -> Error e)
        done;
        Mutex.lock t.mutex;
        remaining := !remaining - (hi - lo);
        if !remaining = 0 then Condition.broadcast t.all_done;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      let lo = ref 0 in
      while !lo < n do
        let hi = min n (!lo + chunk) in
        Queue.add (run_chunk !lo hi) t.queue;
        lo := hi
      done;
      Condition.broadcast t.work_ready;
      (* Help drain the queue; once it is empty, wait for the in-flight
         chunks (possibly on other domains) to settle. *)
      while !remaining > 0 do
        match Queue.take_opt t.queue with
        | Some task ->
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex
        | None -> if !remaining > 0 then Condition.wait t.all_done t.mutex
      done;
      Mutex.unlock t.mutex;
      let out = ref [] in
      let first_error = ref None in
      for i = n - 1 downto 0 do
        match results.(i) with
        | Some (Ok v) -> out := v :: !out
        | Some (Error e) -> first_error := Some e
        | None -> assert false
      done;
      match !first_error with None -> !out | Some e -> raise e
    end
  end

let map_ordered_weighted t xs ~weight ~f =
  (* jobs = 1 must reproduce the serial path bit-for-bit, so [weight]
     is never even consulted. *)
  if t.jobs = 1 then serial_map xs ~f
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    if n = 0 then []
    else begin
      let w =
        Array.map
          (fun x ->
            let c = weight x in
            (* A NaN weight would make the sort comparator inconsistent;
               treat it (and infinities) as "no information". *)
            if Float.is_finite c then c else 0.0)
          items
      in
      (* LPT order: descending estimated cost, ascending input index as
         the tie-break so the hand-out order is deterministic. *)
      let order = Array.init n (fun i -> i) in
      Array.sort (fun a b -> match Float.compare w.(b) w.(a) with 0 -> compare a b | c -> c) order;
      let results : ('b, exn) result option array = Array.make n None in
      (* Self-scheduling: single items from an atomic cursor.  No chunk
         boundaries, so no domain ever idles behind one long run that
         happened to share a chunk with it. *)
      let cursor = Atomic.make 0 in
      let remaining = ref n in
      let drain () =
        let continue = ref true in
        while !continue do
          let k = Atomic.fetch_and_add cursor 1 in
          if k >= n then continue := false
          else begin
            let i = order.(k) in
            results.(i) <- Some (try Ok (f items.(i)) with e -> Error e);
            Mutex.lock t.mutex;
            decr remaining;
            if !remaining = 0 then Condition.broadcast t.all_done;
            Mutex.unlock t.mutex
          end
        done
      in
      Mutex.lock t.mutex;
      (* One drainer per worker domain; the caller's domain drains too.
         A drainer that arrives after the cursor is exhausted exits
         immediately, so stale queue entries are harmless. *)
      for _ = 2 to t.jobs do
        Queue.add drain t.queue
      done;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      drain ();
      Mutex.lock t.mutex;
      while !remaining > 0 do
        Condition.wait t.all_done t.mutex
      done;
      Mutex.unlock t.mutex;
      let out = ref [] in
      let first_error = ref None in
      for i = n - 1 downto 0 do
        match results.(i) with
        | Some (Ok v) -> out := v :: !out
        | Some (Error e) -> first_error := Some e
        | None -> assert false
      done;
      match !first_error with None -> !out | Some e -> raise e
    end
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?jobs ?allow_oversubscribe f =
  let t = create ?jobs ?allow_oversubscribe () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
