(* Canonical content digest for run memoization.

   Two independent 64-bit FNV-1a lanes over a tagged, length-prefixed
   byte encoding.  The tags and length prefixes make the encoding
   injective: no two distinct feeder sequences produce the same byte
   stream, so a digest collision requires a collision of the hash
   itself (~2^-128 per pair for the two lanes).  Not cryptographic —
   the inputs are our own configuration records, not attacker data. *)

type t = { mutable a : int64; mutable b : int64 }

let fnv_prime = 0x100000001b3L

(* Lane A uses the standard FNV-1a offset basis; lane B an arbitrary
   distinct odd constant so the lanes decorrelate immediately. *)
let basis_a = 0xcbf29ce484222325L
let basis_b = 0xaf63bd4c8601b7dfL

let create () = { a = basis_a; b = basis_b }

let add_byte t c =
  let c = Int64.of_int (c land 0xff) in
  t.a <- Int64.mul (Int64.logxor t.a c) fnv_prime;
  t.b <- Int64.mul (Int64.logxor t.b c) fnv_prime

let add_int64 t x =
  for i = 0 to 7 do
    add_byte t (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done

(* Type tags, one byte each, so e.g. the bytes of an int can never be
   confused with the bytes of a float or the contents of a string. *)
let tag_int = 0x69 (* 'i' *)
let tag_float = 0x66 (* 'f' *)
let tag_bool = 0x62 (* 'b' *)
let tag_string = 0x73 (* 's' *)
let tag_variant = 0x76 (* 'v' *)

let int t x =
  add_byte t tag_int;
  add_int64 t (Int64.of_int x)

let float t x =
  add_byte t tag_float;
  add_int64 t (Int64.bits_of_float x)

let bool t x =
  add_byte t tag_bool;
  add_byte t (if x then 1 else 0)

let string t s =
  add_byte t tag_string;
  add_int64 t (Int64.of_int (String.length s));
  String.iter (fun ch -> add_byte t (Char.code ch)) s

let tag t n =
  add_byte t tag_variant;
  add_int64 t (Int64.of_int n)

let hex t = Printf.sprintf "%016Lx%016Lx" t.a t.b

let of_string s =
  let t = create () in
  string t s;
  hex t

(* Single-lane FNV-1a over raw bytes: the payload checksum of the
   persistent run cache. *)
let fnv64 s =
  let h = ref basis_a in
  String.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) fnv_prime)
    s;
  !h

let fnv64_hex s = Printf.sprintf "%016Lx" (fnv64 s)

(* Word-at-a-time FNV-1a lane: folds 8 bytes per multiply instead of 1,
   so checksumming a page image costs ~1/8th of [fnv64].  A different
   hash function than [fnv64] (the fold width changes the value), which
   is fine for its users — it is a framing checksum, not a content
   address.  The trailing partial word and the length are mixed in so
   "abc" / "abc\000" and prefixes of each other cannot collide
   trivially. *)
let fnv64_words s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Digest.fnv64_words: bad range";
  let h = ref basis_b in
  let words = len / 8 in
  for i = 0 to words - 1 do
    h := Int64.mul (Int64.logxor !h (String.get_int64_le s (pos + (i * 8)))) fnv_prime
  done;
  let tail = ref 0L in
  for i = pos + (words * 8) to pos + len - 1 do
    tail := Int64.logor (Int64.shift_left !tail 8) (Int64.of_int (Char.code (String.unsafe_get s i)))
  done;
  h := Int64.mul (Int64.logxor !h !tail) fnv_prime;
  Int64.mul (Int64.logxor !h (Int64.of_int len)) fnv_prime
