type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

(* Non-negative 62-bit value: safe to use as an OCaml [int]. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits62 t in
    let v = r mod bound in
    if r - v > (max_int - bound) + 1 then draw () else v
  in
  draw ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (mantissa /. 9007199254740992.0 (* 2^53 *))

let bool t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

(* Box-Muller, one variate per call (the sine mate is discarded so the
   draw count per call is fixed — two uniforms — keeping replay stable
   if callers interleave distributions). *)
let gaussian t ~mean ~stddev =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_distinct t ~n ~lo ~hi =
  let span = hi - lo + 1 in
  if n < 0 || span < n then invalid_arg "Prng.sample_distinct: range too small";
  if n = 0 then [||]
  else if n * 3 >= span then begin
    (* Dense case: shuffle a prefix of the whole range. *)
    let all = Array.init span (fun i -> lo + i) in
    shuffle t all;
    Array.sub all 0 n
  end
  else begin
    (* Sparse case: rejection into a hash set keeps memory proportional
       to [n] even for very large ranges. *)
    let seen = Hashtbl.create (2 * n) in
    let out = Array.make n lo in
    let filled = ref 0 in
    while !filled < n do
      let v = int_in t ~lo ~hi in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))
