(** Online statistics used by the simulator's metric collection.

    {!Acc} is a Welford accumulator for sample statistics (transaction
    completion times, access times).  {!Timeweighted} tracks the
    time-weighted average of a step function (queue lengths, number of
    cache frames blocked on the log).  {!Busy} accumulates server busy
    time for utilization reports. *)

module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Population variance; 0 when fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** @raise Invalid_argument when empty. *)

  val max : t -> float
  (** @raise Invalid_argument when empty. *)

  val merge : t -> t -> t
  (** Combine two accumulators as if all samples were added to one. *)
end

module Timeweighted : sig
  type t

  val create : ?t0:float -> unit -> t

  val with_clock : clock:float array -> ?t0:float -> unit -> t
  (** An integrator bound to a one-cell clock (e.g. the simulation
      engine's), enabling the allocation-free {!tick}.  [clock.(0)]
      must be monotonically non-decreasing. *)

  val update : t -> now:float -> level:float -> unit
  (** Record that the tracked quantity has value [level] from [now]
      onwards.  [now] must be monotonically non-decreasing. *)

  val tick : t -> level:int -> unit
  (** [update] at the bound clock's current time, for integer levels
      (queue lengths, counts).  Allocation-free: no float crosses a
      function boundary.  Only valid on integrators built with
      {!with_clock}. *)

  val reset : ?t0:float -> t -> unit
  (** Forget all history: level 0, empty area, interval restarting at
      [t0] (default 0) — as freshly created, but reusing the storage.
      Used by the per-domain arenas that recycle simulator state. *)

  val level : t -> float
  (** Current level. *)

  val mean : t -> now:float -> float
  (** Time-weighted mean over [\[t0, now\]]; 0 over an empty interval. *)
end

module Histogram : sig
  (** Streaming quantile accumulator: a fixed-bucket log-scale (HDR
      style) histogram over non-negative samples.  Each power-of-two
      magnitude range is split into 64 linear sub-buckets, bounding the
      relative quantile error by ~0.8% at any magnitude; the first
      [exact_limit] samples are also retained raw, so quantiles over
      small samples are exact (matching {!percentile} bit for bit).
      Memory is a fixed ~6k-bucket array + the raw prefix, independent
      of sample count — the open-loop server records millions of
      latencies through one of these. *)

  type t

  val create : ?exact_limit:int -> unit -> t
  (** [exact_limit] (default 512) bounds the raw-sample prefix that
      makes small-sample quantiles exact. *)

  val add : t -> float -> unit
  (** Record one sample.  Negative samples land in the zero bucket
      (latencies cannot be negative; clamping beats raising mid-run).
      @raise Invalid_argument on NaN. *)

  val clear : t -> unit
  (** Forget every sample — as freshly created (same [exact_limit]),
      reusing the bucket storage.  The sweep loops recycle one
      histogram per transaction class across server runs instead of
      allocating the ~6k-bucket array per point; only safe once the
      point's scalars have been extracted. *)

  val count : t -> int

  val total : t -> float

  val mean : t -> float
  (** 0 when empty. *)

  val max : t -> float
  (** Exact (not bucketed).  @raise Invalid_argument when empty. *)

  val percentile : t -> p:float -> float
  (** Quantile estimate ([p] in 0-100): exact while [count <=
      exact_limit], bucket-midpoint (≤ ~0.8% relative error) beyond,
      never exceeding the exact maximum.
      @raise Invalid_argument when empty or [p] outside [0,100]. *)

  val p50 : t -> float

  val p99 : t -> float

  val p999 : t -> float
  (** The 99.9th percentile — the tail the open-loop bench reports. *)

  val merge : t -> t -> t
  (** [merge a b] is a fresh histogram equivalent to one that recorded
      every sample of [a] and [b]: bucket counts add, count/total add,
      the maximum is exact, and quantiles match a union recording bit
      for bit (the merged [exact_limit] is the min of the inputs', so
      the exact small-sample path only fires while both raw prefixes
      were complete).  Neither input is modified. *)
end

val percentile : float list -> p:float -> float
(** [percentile xs ~p] is the [p]-th percentile (0-100) of the samples,
    by linear interpolation between order statistics.
    @raise Invalid_argument on an empty list or p outside [0,100]. *)

module Busy : sig
  type t

  val create : unit -> t

  val reset : t -> unit
  (** Zero the accumulated busy time (fresh-state reuse). *)

  val add_busy : t -> float -> unit
  (** Accumulate a busy interval of the given duration. *)

  val busy_time : t -> float

  val utilization : t -> elapsed:float -> servers:int -> float
  (** [busy_time / (elapsed * servers)], clamped to [\[0, 1\]]; 0 over an
      empty interval. *)
end
