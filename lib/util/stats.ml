module Acc = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable total : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.0; m2 = 0.0; total = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int t.count
  let stddev t = sqrt (variance t)

  let min t =
    if t.count = 0 then invalid_arg "Stats.Acc.min: empty accumulator";
    t.min

  let max t =
    if t.count = 0 then invalid_arg "Stats.Acc.max: empty accumulator";
    t.max

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.count *. float_of_int b.count /. float_of_int n)
      in
      {
        count = n;
        mean;
        m2;
        total = a.total +. b.total;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
      }
    end
end

module Timeweighted = struct
  (* The accumulator is its own all-float record so its mutable fields
     get flat (unboxed) stores; folding it into the mixed record below
     would box every store of [last_time]/[level]/[area]. *)
  type acc = {
    mutable t0 : float;
    mutable last_time : float;
    mutable level : float;
    mutable area : float;
  }

  type t = { acc : acc; clock : float array }

  (* Placeholder for integrators created without [with_clock]; [tick]
     on such an integrator would advance time to nan, which the assert
     in [update]-style debugging would catch, but callers simply must
     not mix the two styles. *)
  let no_clock = [| Float.nan |]

  let create ?(t0 = 0.0) () =
    { acc = { t0; last_time = t0; level = 0.0; area = 0.0 }; clock = no_clock }

  let with_clock ~clock ?(t0 = 0.0) () =
    { acc = { t0; last_time = t0; level = 0.0; area = 0.0 }; clock }

  let update t ~now ~level =
    let a = t.acc in
    assert (now >= a.last_time);
    a.area <- a.area +. (a.level *. (now -. a.last_time));
    a.last_time <- now;
    a.level <- level

  (* Allocation-free variant of [update] for hot paths: the time is
     read (unboxed) from the clock cell bound at creation and the level
     arrives as an int, so no float crosses a (boxing) function call.
     The body is written out rather than shared with [update] because a
     local helper taking float arguments would reintroduce the boxes. *)
  let tick t ~level =
    let a = t.acc in
    let now = Array.unsafe_get t.clock 0 in
    a.area <- a.area +. (a.level *. (now -. a.last_time));
    a.last_time <- now;
    a.level <- float_of_int level

  let reset ?(t0 = 0.0) t =
    let a = t.acc in
    a.t0 <- t0;
    a.last_time <- t0;
    a.level <- 0.0;
    a.area <- 0.0

  let level t = t.acc.level

  let mean t ~now =
    let a = t.acc in
    let span = now -. a.t0 in
    if span <= 0.0 then 0.0
    else (a.area +. (a.level *. (now -. a.last_time))) /. span
end

let percentile xs ~p =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

module Busy = struct
  type t = { mutable busy : float }

  let create () = { busy = 0.0 }
  let reset t = t.busy <- 0.0
  let add_busy t d = t.busy <- t.busy +. d
  let busy_time t = t.busy

  let utilization t ~elapsed ~servers =
    if elapsed <= 0.0 || servers <= 0 then 0.0
    else Float.min 1.0 (Float.max 0.0 (t.busy /. (elapsed *. float_of_int servers)))
end
