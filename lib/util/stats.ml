module Acc = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable total : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.0; m2 = 0.0; total = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int t.count
  let stddev t = sqrt (variance t)

  let min t =
    if t.count = 0 then invalid_arg "Stats.Acc.min: empty accumulator";
    t.min

  let max t =
    if t.count = 0 then invalid_arg "Stats.Acc.max: empty accumulator";
    t.max

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.count *. float_of_int b.count /. float_of_int n)
      in
      {
        count = n;
        mean;
        m2;
        total = a.total +. b.total;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
      }
    end
end

module Timeweighted = struct
  (* The accumulator is its own all-float record so its mutable fields
     get flat (unboxed) stores; folding it into the mixed record below
     would box every store of [last_time]/[level]/[area]. *)
  type acc = {
    mutable t0 : float;
    mutable last_time : float;
    mutable level : float;
    mutable area : float;
  }

  type t = { acc : acc; clock : float array }

  (* Placeholder for integrators created without [with_clock]; [tick]
     on such an integrator would advance time to nan, which the assert
     in [update]-style debugging would catch, but callers simply must
     not mix the two styles. *)
  let no_clock = [| Float.nan |]

  let create ?(t0 = 0.0) () =
    { acc = { t0; last_time = t0; level = 0.0; area = 0.0 }; clock = no_clock }

  let with_clock ~clock ?(t0 = 0.0) () =
    { acc = { t0; last_time = t0; level = 0.0; area = 0.0 }; clock }

  let update t ~now ~level =
    let a = t.acc in
    assert (now >= a.last_time);
    a.area <- a.area +. (a.level *. (now -. a.last_time));
    a.last_time <- now;
    a.level <- level

  (* Allocation-free variant of [update] for hot paths: the time is
     read (unboxed) from the clock cell bound at creation and the level
     arrives as an int, so no float crosses a (boxing) function call.
     The body is written out rather than shared with [update] because a
     local helper taking float arguments would reintroduce the boxes. *)
  let tick t ~level =
    let a = t.acc in
    let now = Array.unsafe_get t.clock 0 in
    a.area <- a.area +. (a.level *. (now -. a.last_time));
    a.last_time <- now;
    a.level <- float_of_int level

  let reset ?(t0 = 0.0) t =
    let a = t.acc in
    a.t0 <- t0;
    a.last_time <- t0;
    a.level <- 0.0;
    a.area <- 0.0

  let level t = t.acc.level

  let mean t ~now =
    let a = t.acc in
    let span = now -. a.t0 in
    if span <= 0.0 then 0.0
    else (a.area +. (a.level *. (now -. a.last_time))) /. span
end

module Histogram = struct
  (* HDR-style fixed-bucket log-scale histogram over non-negative
     floats: each power-of-two range is cut into [subs] linear
     sub-buckets, so the relative quantile error is bounded by
     1/(2*subs) (~0.8% at 64 sub-buckets) at any magnitude.  The first
     [exact_limit] samples are additionally kept raw, making quantiles
     on small samples exact — the server's per-point latency sets in
     tests stay below the limit, the saturated sweeps do not. *)

  let subs = 64

  let sub_bits = 6 (* log2 subs *)

  (* Exponent range covered exactly: frexp exponents in [min_exp,
     max_exp) — magnitudes from ~1e-9 to ~1e18, far beyond any
     microsecond latency this records.  Out-of-range values clamp into
     the edge buckets (max is still tracked exactly). *)
  let min_exp = -30

  let max_exp = 60

  let n_buckets = ((max_exp - min_exp) * subs) + 1 (* + the zero bucket *)

  type t = {
    counts : int array;
    exact : float array;  (* first [exact_limit] raw samples *)
    exact_limit : int;
    mutable count : int;
    mutable total : float;
    mutable max : float;
  }

  let create ?(exact_limit = 512) () =
    if exact_limit < 0 then invalid_arg "Stats.Histogram.create: negative exact_limit";
    {
      counts = Array.make n_buckets 0;
      exact = Array.make exact_limit 0.0;
      exact_limit;
      count = 0;
      total = 0.0;
      max = neg_infinity;
    }

  let bucket_of v =
    if v <= 0.0 then 0
    else begin
      let m, e = Float.frexp v in
      if e < min_exp then 1
      else if e >= max_exp then n_buckets - 1
      else begin
        (* m in [0.5, 1): 2m - 1 in [0, 1) picks the linear sub-bucket. *)
        let sub = int_of_float (((m *. 2.0) -. 1.0) *. float_of_int subs) in
        let sub = if sub >= subs then subs - 1 else sub in
        1 + ((e - min_exp) lsl sub_bits) + sub
      end
    end

  (* Midpoint of the bucket's value range — the representative a
     quantile query reports for samples that fell in it. *)
  let repr i =
    if i = 0 then 0.0
    else begin
      let e = ((i - 1) lsr sub_bits) + min_exp in
      let sub = (i - 1) land (subs - 1) in
      Float.ldexp (0.5 +. ((float_of_int sub +. 0.5) /. float_of_int (2 * subs))) e
    end

  let add t v =
    if Float.is_nan v then invalid_arg "Stats.Histogram.add: nan sample";
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    if t.count < t.exact_limit then t.exact.(t.count) <- v;
    t.count <- t.count + 1;
    t.total <- t.total +. v;
    if v > t.max then t.max <- v

  let clear t =
    Array.fill t.counts 0 n_buckets 0;
    t.count <- 0;
    t.total <- 0.0;
    t.max <- neg_infinity

  let count t = t.count

  let total t = t.total

  let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count

  let max t =
    if t.count = 0 then invalid_arg "Stats.Histogram.max: empty histogram";
    t.max

  let percentile t ~p =
    if t.count = 0 then invalid_arg "Stats.Histogram.percentile: empty histogram";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Histogram.percentile: p out of [0,100]";
    if t.count <= t.exact_limit then begin
      (* Small sample: exact, same interpolation as {!Stats.percentile}. *)
      let a = Array.sub t.exact 0 t.count in
      Array.sort Float.compare a;
      let n = Array.length a in
      if n = 1 then a.(0)
      else begin
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = Stdlib.min (lo + 1) (n - 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
      end
    end
    else begin
      (* Bucketed: first bucket whose cumulative count reaches the
         rank.  Never overshoots the exact maximum. *)
      let rank =
        Stdlib.max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count)))
      in
      let i = ref 0 and seen = ref 0 in
      while !seen < rank && !i < n_buckets do
        seen := !seen + t.counts.(!i);
        if !seen < rank then incr i
      done;
      Float.min (repr !i) t.max
    end

  let p50 t = percentile t ~p:50.0

  let p99 t = percentile t ~p:99.0

  let p999 t = percentile t ~p:99.9

  (* Merging is exact with respect to quantiles: the bucket counts add
     elementwise (the bucketed path sees the same cumulative walk as a
     histogram that recorded the union), and the raw prefix is kept
     only while it is complete — the merged [exact_limit] is the min of
     the two, so whenever the merged count still fits, both inputs'
     prefixes necessarily held every one of their samples.  The exact
     path sorts before interpolating, so concatenation order cannot
     show through. *)
  let merge a b =
    let exact_limit = Stdlib.min a.exact_limit b.exact_limit in
    let t = create ~exact_limit () in
    Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
    t.count <- a.count + b.count;
    t.total <- a.total +. b.total;
    t.max <- Float.max a.max b.max;
    let filled = ref 0 in
    let take (src : t) =
      let avail = Stdlib.min src.count src.exact_limit in
      let n = Stdlib.min avail (exact_limit - !filled) in
      Array.blit src.exact 0 t.exact !filled n;
      filled := !filled + n
    in
    take a;
    take b;
    t
end

let percentile xs ~p =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

module Busy = struct
  type t = { mutable busy : float }

  let create () = { busy = 0.0 }
  let reset t = t.busy <- 0.0
  let add_busy t d = t.busy <- t.busy +. d
  let busy_time t = t.busy

  let utilization t ~elapsed ~servers =
    if elapsed <= 0.0 || servers <= 0 then 0.0
    else Float.min 1.0 (Float.max 0.0 (t.busy /. (elapsed *. float_of_int servers)))
end
