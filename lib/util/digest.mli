(** Canonical content digest for run memoization.

    An accumulating 128-bit digest (two independent 64-bit FNV-1a
    lanes) over a tagged, length-prefixed byte encoding.  Feeders tag
    every value with its type and length-prefix strings, so the
    encoding is injective: equal digests mean equal feeder sequences
    (up to hash collision, ~2^-128 per pair).  Deterministic across
    processes and platforms (64-bit ints assumed).  Not cryptographic.

    Canonical-serialization contract: a producer of digestable
    configuration (e.g. [Dbm_machine.Config.feed_digest]) must feed
    {e every} field that affects the simulation result, in a fixed
    order, tagging variant constructors with {!tag}.  Adding a field or
    reordering feeds changes digests — which is the desired behaviour,
    as stale persisted results must not be served for new semantics. *)

type t

val create : unit -> t

val int : t -> int -> unit
val float : t -> float -> unit
(** Digests the IEEE-754 bit pattern, so [0.0] and [-0.0] differ. *)

val bool : t -> bool -> unit
val string : t -> string -> unit

val tag : t -> int -> unit
(** Feed a variant-constructor tag (distinct from {!int} feeds). *)

val hex : t -> string
(** The current 128-bit digest as 32 lowercase hex characters.  The
    context remains usable (further feeds evolve the digest). *)

val of_string : string -> string
(** One-shot digest of a single string. *)

val fnv64 : string -> int64
(** Single-lane FNV-1a over the raw bytes — a plain checksum. *)

val fnv64_hex : string -> string
(** {!fnv64} as 16 lowercase hex characters. *)

val fnv64_words : string -> pos:int -> len:int -> int64
(** Word-at-a-time FNV-1a over [s.[pos .. pos+len)]: folds 8 bytes per
    multiply, ~8x cheaper than {!fnv64} on page-sized payloads.  A
    {e different} function than {!fnv64} (fold width changes the value);
    mixes the trailing partial word and the length.  The WAL codec's
    record checksum.  @raise Invalid_argument on a bad range. *)
