type 'a t = {
  data : 'a option array;
  mutable first : int; (* index of the oldest element *)
  mutable length : int;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; first = 0; length = 0 }

let capacity t = Array.length t.data

let length t = t.length

let is_empty t = t.length = 0

let is_full t = t.length = Array.length t.data

let push t x =
  if is_full t then false
  else begin
    let i = (t.first + t.length) mod Array.length t.data in
    t.data.(i) <- Some x;
    t.length <- t.length + 1;
    true
  end

let push_exn t x = if not (push t x) then failwith "Ring.push_exn: buffer full"

let pop t =
  if t.length = 0 then None
  else begin
    let x = t.data.(t.first) in
    t.data.(t.first) <- None;
    t.first <- (t.first + 1) mod Array.length t.data;
    t.length <- t.length - 1;
    x
  end

let peek t = if t.length = 0 then None else t.data.(t.first)

let extend t =
  let t' = { data = Array.make (2 * Array.length t.data) None; first = 0; length = t.length } in
  for i = 0 to t.length - 1 do
    t'.data.(i) <- t.data.((t.first + i) mod Array.length t.data)
  done;
  t'

let to_list t =
  let rec go i acc =
    if i = t.length then List.rev acc
    else
      match t.data.((t.first + i) mod Array.length t.data) with
      | Some x -> go (i + 1) (x :: acc)
      | None -> assert false
  in
  go 0 []

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.first <- 0;
  t.length <- 0
