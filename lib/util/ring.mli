(** Fixed-capacity FIFO ring buffer.

    Models the scratch space of the overwriting shadow architectures
    (Section 3.2.2.2), which the paper manages "as a ring buffer", and is
    reused by the storage engines for their scratch areas. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] appends [x]; returns [false] (and drops [x]) when full. *)

val push_exn : 'a t -> 'a -> unit
(** @raise Failure when the buffer is full (the paper's "overflow"
    condition that overwriting architectures must special-case). *)

val pop : 'a t -> 'a option
(** Remove and return the oldest element. *)

val peek : 'a t -> 'a option

val extend : 'a t -> 'a t
(** A fresh ring with twice the capacity holding the same elements
    (oldest first).  The original is untouched: bounded users keep the
    paper's overflow semantics, growable users (e.g. a resource's job
    queue) swap in the extension when [is_full]. *)

val to_list : 'a t -> 'a list
(** Oldest first.  Non-destructive. *)

val clear : 'a t -> unit
