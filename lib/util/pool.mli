(** Fixed-size domain-based worker pool.

    The pool owns [jobs - 1] worker domains pulling chunks of work off a
    shared queue (the calling domain contributes as the [jobs]-th worker
    while a [map_ordered] is in flight).  Results are always delivered in
    input order, so for a pure [f] the output is independent of how the
    chunks were interleaved across domains — parallelism never changes
    what a caller observes, only how fast it arrives.

    With [jobs = 1] no domains are spawned and [map_ordered] degenerates
    to a plain left-to-right [List.map], reproducing the serial execution
    path bit-for-bit.

    [map_ordered] must not be called from inside a task running on the
    same pool (no nesting); tasks that need parallelism should be
    restructured into a flat work list. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size to use when the
    user expressed no preference. *)

val create : ?jobs:int -> unit -> t
(** A pool of [jobs] workers (default {!default_jobs}).
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val map_ordered : t -> 'a list -> f:('a -> 'b) -> 'b list
(** [map_ordered t xs ~f] applies [f] to every element of [xs], fanning
    the applications out across the pool's domains, and returns the
    results in the order of [xs].  If one or more applications raise, the
    exception of the smallest input index is re-raised in the caller
    after all chunks have settled. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool is unusable after. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)
