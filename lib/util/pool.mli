(** Fixed-size domain-based worker pool.

    The pool owns [jobs - 1] worker domains pulling chunks of work off a
    shared queue (the calling domain contributes as the [jobs]-th worker
    while a [map_ordered] is in flight).  Results are always delivered in
    input order, so for a pure [f] the output is independent of how the
    chunks were interleaved across domains — parallelism never changes
    what a caller observes, only how fast it arrives.

    With [jobs = 1] no domains are spawned and [map_ordered] degenerates
    to a plain left-to-right [List.map], reproducing the serial execution
    path bit-for-bit.

    [map_ordered] must not be called from inside a task running on the
    same pool (no nesting); tasks that need parallelism should be
    restructured into a flat work list. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the host core count, which is
    both the default pool size and the clamp on requested sizes. *)

val create : ?jobs:int -> ?allow_oversubscribe:bool -> unit -> t
(** A pool of [jobs] workers (default {!default_jobs}).  The effective
    size is clamped to {!default_jobs} — running more domains than cores
    only slows every domain down — unless [allow_oversubscribe] is
    [true] (for tests that must exercise the parallel path on a small
    host).  With an effective size of 1 no domain is ever spawned.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** Effective worker count after clamping. *)

val requested_jobs : t -> int
(** The size the caller asked for, before clamping. *)

val map_ordered : t -> 'a list -> f:('a -> 'b) -> 'b list
(** [map_ordered t xs ~f] applies [f] to every element of [xs], fanning
    the applications out across the pool's domains, and returns the
    results in the order of [xs].  If one or more applications raise, the
    exception of the smallest input index is re-raised in the caller
    after all chunks have settled. *)

val map_ordered_weighted : t -> 'a list -> weight:('a -> float) -> f:('a -> 'b) -> 'b list
(** Like {!map_ordered}, but cost-aware: the work list is sorted by
    descending [weight] (LPT — longest processing time first, ties
    broken by input order) and items are handed out one at a time from
    an atomic cursor, so a long run never idles other domains behind a
    chunk boundary.  Results are still returned in input order, and the
    exception of the smallest input index is re-raised if any
    application raises.  With [jobs = 1] this is exactly the serial
    path — [weight] is not called at all.  Non-finite weights are
    treated as 0. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool is unusable after. *)

val with_pool : ?jobs:int -> ?allow_oversubscribe:bool -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)
