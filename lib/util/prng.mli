(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the simulator flows through values of type {!t} so
    that every experiment is exactly reproducible from its seed.  The
    generator is the SplitMix64 mixer of Steele, Lea and Flood; it has a
    full 2{^64} period and passes BigCrush, which is far more than a
    queueing simulation needs. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator positioned at the same point of
    the stream as [t]. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator seeded with the
    draw, statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform on the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)]. *)

val bool : t -> p:float -> bool
(** [bool t ~p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normally distributed draw (Box-Muller; exactly two uniforms are
    consumed per call, so interleaved replay stays deterministic). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_distinct : t -> n:int -> lo:int -> hi:int -> int array
(** [sample_distinct t ~n ~lo ~hi] draws [n] distinct integers uniformly
    from the inclusive range [\[lo, hi\]], in random order.
    @raise Invalid_argument if the range holds fewer than [n] values. *)

val pick : t -> 'a array -> 'a
(** Uniform draw from a non-empty array.  @raise Invalid_argument on an
    empty array. *)
