module Arch = Dbm_machine.Arch
module Drive = Dbm_disk.Drive
module Engine = Dbm_sim.Engine
module Workload = Dbm_workload.Workload

type selection = Cyclic | Random | Qp_mod | Txn_mod

type mode = Logical | Physical

type routing = Dedicated of float | Via_cache

type config = {
  n_log_processors : int;
  selection : selection;
  mode : mode;
  routing : routing;
  fragment_bytes : int;
  log_disk : Dbm_disk.Params.t;
  fragment_cpu_ms : float;
  enforce_wal : bool;
  batch_release : bool;
}

let default =
  {
    n_log_processors = 1;
    selection = Cyclic;
    mode = Logical;
    routing = Dedicated 1.0;
    fragment_bytes = 600;
    log_disk = Dbm_disk.Params.ibm_3350;
    fragment_cpu_ms = 2.0;
    enforce_wal = true;
    batch_release = true;
  }

(* The descriptor names only the architecture, never the call site:
   two tables requesting logging with identical configs must produce
   identical run digests so the runs dedup. *)
let descriptor config =
  let d = Dbm_util.Digest.create () in
  let module D = Dbm_util.Digest in
  D.string d "logging-config";
  D.int d config.n_log_processors;
  D.tag d (match config.selection with Cyclic -> 0 | Random -> 1 | Qp_mod -> 2 | Txn_mod -> 3);
  D.tag d (match config.mode with Logical -> 0 | Physical -> 1);
  (match config.routing with
  | Dedicated bw ->
    D.tag d 0;
    D.float d bw
  | Via_cache -> D.tag d 1);
  D.int d config.fragment_bytes;
  Dbm_disk.Params.feed_digest d config.log_disk;
  D.float d config.fragment_cpu_ms;
  D.bool d config.enforce_wal;
  D.bool d config.batch_release;
  "logging:" ^ D.hex d

(* A log processor: a log disk plus the log page being assembled. *)
type lp = {
  drive : Drive.t;
  mutable next_page : int;  (* monotonically increasing append position *)
  mutable fill_bytes : int;
  mutable buffered : (int * (unit -> unit)) list;  (* (txn id, release) *)
}

type txn_track = { mutable pending : int; mutable commit_k : (unit -> unit) option }

let make config (ctx : Arch.ctx) =
  if config.n_log_processors < 1 then invalid_arg "Logging.make: need a log processor";
  if config.fragment_bytes <= 0 then invalid_arg "Logging.make: bad fragment size";
  let engine = ctx.Arch.engine in
  let page_bytes = ctx.Arch.config.Dbm_machine.Config.page_size_bytes in
  let lps =
    Array.init config.n_log_processors (fun i ->
        {
          drive =
            Drive.create engine ~params:config.log_disk
              ~layout:Dbm_disk.Layout.Sequential
              ~name:(Printf.sprintf "log-%d" i) ();
          next_page = 0;
          fill_bytes = 0;
          buffered = [];
        })
  in
  let tracks : (int, txn_track) Hashtbl.t = Hashtbl.create 64 in
  (* Transactions whose commit protocol has begun: any fragment of
     theirs that is still in transit must be forced as soon as it
     reaches its log processor. *)
  let force_on_arrival : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let track txn_id =
    match Hashtbl.find_opt tracks txn_id with
    | Some t -> t
    | None ->
      let t = { pending = 0; commit_k = None } in
      Hashtbl.replace tracks txn_id t;
      t
  in
  let log_pages_written = ref 0 in
  let log_forces = ref 0 in

  let settle txn_id =
    let t = track txn_id in
    t.pending <- t.pending - 1;
    if t.pending = 0 then begin
      Hashtbl.remove force_on_arrival txn_id;
      match t.commit_k with
      | Some k ->
        t.commit_k <- None;
        k ()
      | None -> ()
    end
  in

  (* Write the lp's current buffer as one log page; every buffered
     fragment's release fires when the page reaches stable storage. *)
  let flush lp =
    if lp.buffered <> [] || lp.fill_bytes > 0 then begin
      let releases = List.rev lp.buffered in
      lp.buffered <- [];
      lp.fill_bytes <- 0;
      let page = lp.next_page in
      lp.next_page <- lp.next_page + 1;
      incr log_pages_written;
      Drive.submit lp.drive Drive.Write ~pages:[ page ] (fun () ->
          if config.batch_release then
            List.iter
              (fun (txn_id, release) ->
                release ();
                settle txn_id)
              releases
          else
            (* Ablation: hand the updated pages to the data-disk queues
               one at a time (as physical logging does), destroying the
               same-cylinder write coalescing of Section 4.1.2. *)
            List.iteri
              (fun i (txn_id, release) ->
                ignore
                  (Engine.schedule engine ~delay:(0.05 *. float_of_int i) (fun () ->
                       release ();
                       settle txn_id)))
              releases)
    end
  in

  let add_fragment lp ~txn_id ~bytes ~release =
    if lp.fill_bytes + bytes > page_bytes then flush lp;
    lp.fill_bytes <- lp.fill_bytes + bytes;
    lp.buffered <- (txn_id, release) :: lp.buffered;
    if lp.fill_bytes >= page_bytes || Hashtbl.mem force_on_arrival txn_id then flush lp
  in

  (* Physical logging: each update writes its own pair of image pages. *)
  let write_images lp ~txn_id ~release =
    let first = lp.next_page in
    lp.next_page <- lp.next_page + 2;
    log_pages_written := !log_pages_written + 2;
    Drive.submit lp.drive Drive.Write ~pages:[ first; first + 1 ] (fun () ->
        release ();
        settle txn_id)
  in

  let n_lp = config.n_log_processors in
  let cyclic_counter = ref 0 in
  let select ~qp (txn : Workload.txn) =
    let i =
      match config.selection with
      | Cyclic ->
        let c = !cyclic_counter in
        incr cyclic_counter;
        c mod n_lp
      | Random -> Dbm_util.Prng.int ctx.Arch.rng n_lp
      | Qp_mod -> qp mod n_lp
      | Txn_mod -> txn.Workload.id mod n_lp
    in
    lps.(i)
  in

  let transmission_ms bytes =
    match config.routing with
    | Dedicated mb_per_s ->
      if mb_per_s <= 0.0 then invalid_arg "Logging: non-positive bandwidth";
      float_of_int bytes /. (mb_per_s *. 1000.0)
    | Via_cache ->
      (* Staged through the cache: a write by the QP plus a read by the
         log processor, both at memory speed. *)
      0.2
  in

  let on_update ~txn ~page:_ ~qp ~release =
    (* Ablation: without the write-ahead rule the dirty frame goes to
       disk at once; the fragment is still logged (and still counted),
       but nothing waits for it. *)
    let release =
      if config.enforce_wal then release
      else begin
        release ();
        fun () -> ()
      end
    in
    let t = track txn.Workload.id in
    t.pending <- t.pending + 1;
    let lp = select ~qp txn in
    let bytes =
      match config.mode with Logical -> config.fragment_bytes | Physical -> 2 * page_bytes
    in
    let deliver () =
      match config.mode with
      | Logical -> add_fragment lp ~txn_id:txn.Workload.id ~bytes ~release
      | Physical -> write_images lp ~txn_id:txn.Workload.id ~release
    in
    let delay = transmission_ms bytes in
    match config.routing with
    | Dedicated _ -> ignore (Engine.schedule engine ~delay deliver)
    | Via_cache ->
      (* Hold a cache frame while the fragment is in transit, when one
         is available; the paper found frames are not the constraint. *)
      let took = ctx.Arch.take_frames 1 in
      ignore
        (Engine.schedule engine ~delay (fun () ->
             if took then ctx.Arch.release_frames 1;
             deliver ()))
  in

  let on_commit ~txn ~k =
    let t = track txn.Workload.id in
    (* Force the partial log pages still holding this transaction's
       fragments; fragments still in transit are forced on arrival. *)
    Array.iter
      (fun lp ->
        if List.exists (fun (id, _) -> id = txn.Workload.id) lp.buffered then begin
          incr log_forces;
          flush lp
        end)
      lps;
    if t.pending = 0 then k ()
    else begin
      Hashtbl.replace force_on_arrival txn.Workload.id ();
      t.commit_k <- Some k
    end
  in

  let cpu_extra_ms ~txn:_ ~page:_ ~write =
    if write then
      config.fragment_cpu_ms
      +. (match config.routing with Via_cache -> 1.0 | Dedicated _ -> 0.0)
    else 0.0
  in

  let extra_stats () =
    let utils = Array.map (fun lp -> Drive.utilization lp.drive) lps in
    let mean = Array.fold_left ( +. ) 0.0 utils /. float_of_int n_lp in
    ("log_disk_util", mean)
    :: ("log_pages_written", float_of_int !log_pages_written)
    :: ("log_forces", float_of_int !log_forces)
    :: Array.to_list (Array.mapi (fun i u -> (Printf.sprintf "log_disk_util_%d" i, u)) utils)
  in

  Arch.make ~cpu_extra_ms ~on_update ~on_commit ~extra_stats
    (Printf.sprintf "logging-%d-%s" n_lp
       (match config.mode with Logical -> "logical" | Physical -> "physical"))
