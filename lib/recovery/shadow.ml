module Arch = Dbm_machine.Arch
module Config = Dbm_machine.Config
module Drive = Dbm_disk.Drive
module Workload = Dbm_workload.Workload

type variant =
  | Thru_page_table of { n_pt_processors : int; buffer_pages : int }
  | Overwrite_no_undo
  | Overwrite_no_redo

type config = {
  variant : variant;
  pt_disk : Dbm_disk.Params.t;
  entries_per_pt_page : int;
  pt_lookup_cpu_ms : float;
  pt_page_spacing : int;
}

let thru ~n_pt_processors ~buffer_pages =
  {
    variant = Thru_page_table { n_pt_processors; buffer_pages };
    pt_disk = Dbm_disk.Params.ibm_3350;
    entries_per_pt_page = 1024;
    pt_lookup_cpu_ms = 0.5;
    pt_page_spacing = 650;
  }

let default_thru = thru ~n_pt_processors:1 ~buffer_pages:10

let overwrite_no_undo =
  {
    variant = Overwrite_no_undo;
    pt_disk = Dbm_disk.Params.ibm_3350;
    entries_per_pt_page = 1024;
    pt_lookup_cpu_ms = 0.5;
    pt_page_spacing = 650;
  }

let overwrite_no_redo = { overwrite_no_undo with variant = Overwrite_no_redo }

(* Call-site-independent architecture descriptor; see Logging.descriptor. *)
let descriptor config =
  let d = Dbm_util.Digest.create () in
  let module D = Dbm_util.Digest in
  D.string d "shadow-config";
  (match config.variant with
  | Thru_page_table { n_pt_processors; buffer_pages } ->
    D.tag d 0;
    D.int d n_pt_processors;
    D.int d buffer_pages
  | Overwrite_no_undo -> D.tag d 1
  | Overwrite_no_redo -> D.tag d 2);
  Dbm_disk.Params.feed_digest d config.pt_disk;
  D.int d config.entries_per_pt_page;
  D.float d config.pt_lookup_cpu_ms;
  D.int d config.pt_page_spacing;
  "shadow:" ^ D.hex d

(* ------------------------------------------------------------------ *)
(* Thru page-table                                                     *)
(* ------------------------------------------------------------------ *)

let make_thru config ~n_pt ~buffer_pages (ctx : Arch.ctx) =
  if n_pt < 1 then invalid_arg "Shadow: need a page-table processor";
  if buffer_pages < 1 then invalid_arg "Shadow: need a page-table buffer";
  let engine = ctx.Arch.engine in
  let pt_drives =
    Array.init n_pt (fun i ->
        Drive.create engine ~params:config.pt_disk ~layout:Dbm_disk.Layout.Sequential
          ~name:(Printf.sprintf "pagetable-%d" i) ())
  in
  (* Page-table page [p] lives on page-table disk [p mod n_pt].  The
     page-table disk holds the page tables of all the relations, so
     consecutive page-table pages of one relation are spread apart and
     successive accesses pay short seeks. *)
  let pt_home p = (pt_drives.(p mod n_pt), p / n_pt * config.pt_page_spacing) in
  let buffer : (int, unit) Dbm_util.Lru.t = Dbm_util.Lru.create ~capacity:buffer_pages () in
  let pending : (int, (unit -> unit) list) Hashtbl.t = Hashtbl.create 16 in
  (* A lookup that finds the entry buffered, or piggybacks on a fetch
     already in flight, costs no page-table disk read: both count as
     hits. *)
  let pt_lookups = ref 0 in
  let pt_hits = ref 0 in
  let pt_reads = ref 0 in
  let pt_writes = ref 0 in
  let pt_commit_rereads = ref 0 in
  (* Page-table pages each transaction has updated. *)
  let touched : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in

  let write_pt_page p ~k =
    incr pt_writes;
    let drive, local = pt_home p in
    Drive.submit drive Drive.Write ~pages:[ local ] k
  in
  let install p =
    match Dbm_util.Lru.add buffer p () with
    | None -> ()
    | Some { Dbm_util.Lru.key; dirty; _ } ->
      (* A dirty entry pushed out before commit must be written now and
         reread at commit time: the buffer-size penalty of Table 6. *)
      if dirty then write_pt_page key ~k:(fun () -> ())
  in
  let fetch_pt_page p ~k =
    match Hashtbl.find_opt pending p with
    | Some ks -> Hashtbl.replace pending p (k :: ks)
    | None ->
      Hashtbl.replace pending p [ k ];
      incr pt_reads;
      let drive, local = pt_home p in
      Drive.submit drive Drive.Read ~pages:[ local ] (fun () ->
          let ks = Option.value (Hashtbl.find_opt pending p) ~default:[] in
          Hashtbl.remove pending p;
          install p;
          List.iter (fun k -> k ()) ks)
  in

  let pt_page_of page = page / config.entries_per_pt_page in

  let before_read ~txn:_ ~page ~k =
    let p = pt_page_of page in
    incr pt_lookups;
    match Dbm_util.Lru.find buffer p with
    | Some () ->
      incr pt_hits;
      k ()
    | None ->
      if Hashtbl.mem pending p then incr pt_hits;
      fetch_pt_page p ~k
  in

  let on_update ~txn ~page ~qp:_ ~release =
    let p = pt_page_of page in
    (* The new block address becomes an intention: the entry is dirty in
       the buffer and must reach the page-table disk at commit. *)
    Dbm_util.Lru.set_dirty buffer p true;
    let set =
      match Hashtbl.find_opt touched txn.Workload.id with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.replace touched txn.Workload.id s;
        s
    in
    Hashtbl.replace set p ();
    release ()
  in

  let on_commit ~txn ~k =
    match Hashtbl.find_opt touched txn.Workload.id with
    | None -> k ()
    | Some set ->
      Hashtbl.remove touched txn.Workload.id;
      let outstanding = ref (Hashtbl.length set) in
      if !outstanding = 0 then k ()
      else begin
        let one_done () =
          decr outstanding;
          if !outstanding = 0 then k ()
        in
        Hashtbl.iter
          (fun p () ->
            if Dbm_util.Lru.mem buffer p then begin
              Dbm_util.Lru.set_dirty buffer p false;
              write_pt_page p ~k:one_done
            end
            else begin
              (* Evicted before commit: reread, update, write back. *)
              incr pt_commit_rereads;
              fetch_pt_page p ~k:(fun () ->
                  Dbm_util.Lru.set_dirty buffer p false;
                  write_pt_page p ~k:one_done)
            end)
          set
      end
  in

  let extra_stats () =
    let utils = Array.map Drive.utilization pt_drives in
    let mean = Array.fold_left ( +. ) 0.0 utils /. float_of_int n_pt in
    let hit_rate =
      if !pt_lookups = 0 then 0.0 else float_of_int !pt_hits /. float_of_int !pt_lookups
    in
    ("pt_disk_util", mean)
    :: ("pt_buffer_hit_rate", hit_rate)
    :: ("pt_reads", float_of_int !pt_reads)
    :: ("pt_writes", float_of_int !pt_writes)
    :: ("pt_commit_rereads", float_of_int !pt_commit_rereads)
    :: Array.to_list (Array.mapi (fun i u -> (Printf.sprintf "pt_disk_util_%d" i, u)) utils)
  in

  Arch.make ~before_read ~on_update ~on_commit ~extra_stats
    (Printf.sprintf "shadow-pt-%d-buf%d" n_pt buffer_pages)

(* ------------------------------------------------------------------ *)
(* Overwriting                                                         *)
(* ------------------------------------------------------------------ *)

let make_overwrite ~no_undo (ctx : Arch.ctx) =
  let cfg = ctx.Arch.config in
  let scratch_writes = ref 0 in
  let scratch_reads = ref 0 in
  let install_writes = ref 0 in
  (* Per-transaction list of (disk, scratch page, home page) triples. *)
  let staged : (int, (int * int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let stage txn_id entry =
    match Hashtbl.find_opt staged txn_id with
    | Some l -> l := entry :: !l
    | None -> Hashtbl.replace staged txn_id (ref [ entry ])
  in

  let extra_stats () =
    [
      ("scratch_writes", float_of_int !scratch_writes);
      ("scratch_reads", float_of_int !scratch_reads);
      ("install_writes", float_of_int !install_writes);
    ]
  in

  if no_undo then begin
    (* Updated pages go to the scratch ring; at commit they are read
       back and overwrite the shadows in place. *)
    let write_back ~txn ~page ~written =
      let d, home = Config.locate cfg ~page in
      let scratch = ctx.Arch.scratch_page ~disk:d in
      stage txn.Workload.id (d, scratch, home);
      incr scratch_writes;
      Drive.submit ctx.Arch.data_drives.(d) Drive.Write ~pages:[ scratch ] written
    in
    let on_commit ~txn ~k =
      match Hashtbl.find_opt staged txn.Workload.id with
      | None -> k ()
      | Some l ->
        Hashtbl.remove staged txn.Workload.id;
        let by_disk = Hashtbl.create 4 in
        List.iter
          (fun (d, scratch, home) ->
            let prev = Option.value (Hashtbl.find_opt by_disk d) ~default:[] in
            Hashtbl.replace by_disk d ((scratch, home) :: prev))
          !l;
        (* On a parallel-access drive the scratch pages are read back
           and the shadows overwritten in very few accesses (one batched
           read request, one batched write request).  A conventional
           drive overwrites the shadows one page at a time, the arm
           travelling between the scratch area and the data area for
           every page (Section 4.2.4). *)
        let parallel = ctx.Arch.config.Config.disk.Dbm_disk.Params.parallel_access in
        let n_disks = Hashtbl.length by_disk in
        let disks_done = ref 0 in
        let disk_finished () =
          incr disks_done;
          if !disks_done = n_disks then k ()
        in
        Hashtbl.iter
          (fun d pairs ->
            let drive = ctx.Arch.data_drives.(d) in
            let n = List.length pairs in
            scratch_reads := !scratch_reads + n;
            install_writes := !install_writes + n;
            if parallel then begin
              let scratches = List.map fst pairs and homes = List.map snd pairs in
              Drive.submit drive Drive.Read ~pages:scratches (fun () ->
                  Drive.submit drive Drive.Write ~pages:homes disk_finished)
            end
            else begin
              let rec install = function
                | [] -> disk_finished ()
                | (scratch, home) :: rest ->
                  Drive.submit drive Drive.Read ~pages:[ scratch ] (fun () ->
                      Drive.submit drive Drive.Write ~pages:[ home ] (fun () -> install rest))
              in
              install pairs
            end)
          by_disk
    in
    Arch.make ~write_back ~on_commit ~extra_stats "shadow-overwrite-no-undo"
  end
  else begin
    (* No-redo: save the shadow (before image) to scratch before the
       home location may be overwritten in place. *)
    let on_update ~txn:_ ~page ~qp:_ ~release =
      let d, _home = Config.locate cfg ~page in
      let scratch = ctx.Arch.scratch_page ~disk:d in
      incr scratch_writes;
      Drive.submit ctx.Arch.data_drives.(d) Drive.Write ~pages:[ scratch ] release
    in
    Arch.make ~on_update ~extra_stats "shadow-overwrite-no-redo"
  end

let make config ctx =
  match config.variant with
  | Thru_page_table { n_pt_processors; buffer_pages } ->
    make_thru config ~n_pt:n_pt_processors ~buffer_pages ctx
  | Overwrite_no_undo -> make_overwrite ~no_undo:true ctx
  | Overwrite_no_redo -> make_overwrite ~no_undo:false ctx
