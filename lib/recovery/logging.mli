(** The parallel logging recovery architecture (Section 3.1).

    [N >= 1] log processors, each with its own log disk.  When a query
    processor updates a page it creates a log fragment, selects a log
    processor and ships the fragment to it; the log processor assembles
    fragments into log pages and writes full pages to its log disk.  A
    dirty data page may not be flushed before the log page holding its
    fragment is on stable storage (write-ahead logging), and committing
    forces the partial log pages that still hold the transaction's
    fragments.

    With {e logical} logging a fragment is a few hundred bytes, so one
    log page carries many updates and all of the corresponding data
    pages are released to the data-disk queues at the same instant.
    With {e physical} logging every update writes two full log pages
    (before and after images), so data pages trickle out one at a time
    (Section 4.1.2). *)

type selection =
  | Cyclic  (** query processors cycle among the log processors *)
  | Random
  | Qp_mod  (** query-processor number mod number of log processors *)
  | Txn_mod  (** transaction number mod number of log processors *)

type mode = Logical | Physical

type routing =
  | Dedicated of float
      (** dedicated interconnect with the given bandwidth in MB/s *)
  | Via_cache
      (** fragments are staged through disk-cache frames *)

type config = {
  n_log_processors : int;
  selection : selection;
  mode : mode;
  routing : routing;
  fragment_bytes : int;  (** logical log-fragment size *)
  log_disk : Dbm_disk.Params.t;
  fragment_cpu_ms : float;  (** QP time to construct a fragment *)
  enforce_wal : bool;
      (** ablation switch: when [false], dirty data pages are released
          for write-back immediately, before their log records are
          stable — UNSAFE for recovery, used only to measure what the
          write-ahead rule costs (DESIGN.md ablations) *)
  batch_release : bool;
      (** ablation switch: when [false], even logical logging releases
          each data page individually as its fragment is logged instead
          of releasing a whole log page's worth at once, removing the
          same-cylinder coalescing benefit of Section 4.1.2 *)
}

val default : config
(** One log processor, cyclic selection, logical logging, a dedicated
    1 MB/s interconnect, 600-byte fragments on an IBM 3350 log disk. *)

val descriptor : config -> string
(** Canonical architecture descriptor for content-addressed run
    caching: ["logging:<hex>"] where the hex digests every config
    field.  Equal configs yield equal descriptors regardless of which
    table or ablation requested them. *)

val make : config -> Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t
(** Extra statistics reported: ["log_disk_util"] (mean over the log
    disks), ["log_disk_util_<i>"] per disk, ["log_pages_written"], and
    ["log_forces"] (commit-time partial-page flushes). *)
