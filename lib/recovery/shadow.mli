(** The shadow recovery architectures (Section 3.2).

    {b Thru page-table}: data pages are reached through a page table
    kept on dedicated page-table disks served by page-table processors
    under the back-end controller.  Every data-page read first fetches
    the page's table entry (buffered in an LRU page-table buffer);
    updated entries are written back at commit, rereading any entry that
    the buffer evicted in the meantime.  Whether logically adjacent data
    pages stay physically clustered is the machine's layout
    configuration ([Sequential] vs [Scrambled]).

    {b Overwriting (no-undo)}: while a transaction is active its updated
    pages are written to a scratch ring on the same disk; at commit the
    updated pages are read back from the scratch area and overwrite the
    shadows in place, preserving physical clustering and eliminating the
    page table (Section 3.2.2.2).

    {b Overwriting (no-redo)}: the original of each page is first copied
    to the scratch area; updates then overwrite the home location in
    place, and commit requires no further installation. *)

type variant =
  | Thru_page_table of { n_pt_processors : int; buffer_pages : int }
  | Overwrite_no_undo
  | Overwrite_no_redo

type config = {
  variant : variant;
  pt_disk : Dbm_disk.Params.t;
  entries_per_pt_page : int;  (** 1024 four-byte entries in a 4 KB page *)
  pt_lookup_cpu_ms : float;  (** page-table processor time per lookup *)
  pt_page_spacing : int;
      (** distance in pages between consecutive page-table pages on the
          page-table disk (it holds the tables of all relations, so a
          relation's page-table pages are not contiguous) *)
}

val default_thru : config
(** One page-table processor, a 10-page page-table buffer, IBM 3350
    page-table disk. *)

val thru : n_pt_processors:int -> buffer_pages:int -> config

val overwrite_no_undo : config

val overwrite_no_redo : config

val descriptor : config -> string
(** Canonical architecture descriptor (["shadow:<hex>"]) for
    content-addressed run caching; equal configs yield equal
    descriptors regardless of the requesting call site. *)

val make : config -> Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t
(** Extra statistics: thru page-table reports ["pt_disk_util"] (mean),
    ["pt_disk_util_<i>"], ["pt_buffer_hit_rate"], ["pt_reads"],
    ["pt_writes"], ["pt_commit_rereads"]; the overwriting variants
    report ["scratch_writes"], ["scratch_reads"] and
    ["install_writes"]. *)
