(** The differential-file recovery architecture (Section 3.3).

    Each relation [R] is a view [R = (B u A) - D]: a read-only base file
    [B], an append-only additions file [A] and an append-only deletions
    file [D].  Processing a base page therefore costs extra disk reads
    (the referenced A and D pages, a [size_fraction] of the base pages
    read) and extra query-processor work (the set-union/set-difference).

    With the {e basic} strategy every B (and A) page incurs the full
    set-difference against the referenced D pages.  With the {e optimal}
    strategy the set-difference is taken only for pages whose initial
    scan yields at least one qualifying tuple, modelled by
    [qualify_prob].

    Updates append tuples instead of rewriting pages: on average only
    [output_fraction] of an output page is produced per updated page, so
    a transaction writes roughly [output_fraction * writes] pages
    (rounded up per transaction — the fragmentation effect of
    Table 10). *)

type strategy = Basic | Optimal

type config = {
  size_fraction : float;  (** size of A and D relative to B (0.10) *)
  output_fraction : float;  (** of an output page produced per update *)
  strategy : strategy;
  qualify_prob : float;
      (** probability that a page yields a qualifying tuple and pays the
          set-difference under the optimal strategy, at the reference
          differential size of 10 %; it scales as [(size/0.10)^0.8],
          since larger A and D files make more pages qualify *)
  setdiff_cpu_ms : float;
      (** query-processor cost of set-differencing one data page
          against one differential page *)
}

val default : config
(** 10 % differential files, 10 % output fraction, optimal strategy,
    qualify probability 0.3, 54 ms per page pair (tuple-wise
    set-difference of two ~100-tuple pages on a VAX-11/750-class
    processor). *)

val basic : config

val descriptor : config -> string
(** Canonical architecture descriptor (["diff-file:<hex>"]) for
    content-addressed run caching; equal configs yield equal
    descriptors regardless of the requesting call site. *)

val make : config -> Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t
(** Extra statistics: ["diff_pages_read"], ["output_pages_written"],
    ["setdiff_ops"]. *)
