module Arch = Dbm_machine.Arch
module Config = Dbm_machine.Config
module Drive = Dbm_disk.Drive
module Workload = Dbm_workload.Workload

type strategy = Basic | Optimal

type config = {
  size_fraction : float;
  output_fraction : float;
  strategy : strategy;
  qualify_prob : float;
  setdiff_cpu_ms : float;
}

let default =
  {
    size_fraction = 0.10;
    output_fraction = 0.10;
    strategy = Optimal;
    qualify_prob = 0.3;
    setdiff_cpu_ms = 54.0;
  }

let basic = { default with strategy = Basic }

(* Call-site-independent architecture descriptor; see Logging.descriptor. *)
let descriptor config =
  let d = Dbm_util.Digest.create () in
  let module D = Dbm_util.Digest in
  D.string d "diff-file-config";
  D.float d config.size_fraction;
  D.float d config.output_fraction;
  D.tag d (match config.strategy with Basic -> 0 | Optimal -> 1);
  D.float d config.qualify_prob;
  D.float d config.setdiff_cpu_ms;
  "diff-file:" ^ D.hex d

type txn_out = {
  mutable fill : float;  (* fraction of the current output page produced *)
  mutable outstanding : int;  (* output-page writes still in flight *)
  mutable commit_k : (unit -> unit) option;
}

let make config (ctx : Arch.ctx) =
  if config.size_fraction < 0.0 then invalid_arg "Diff_file: negative size fraction";
  if config.output_fraction <= 0.0 || config.output_fraction > 1.0 then
    invalid_arg "Diff_file: output fraction out of (0,1]";
  let cfg = ctx.Arch.config in
  let diff_pages_read = ref 0 in
  let output_pages_written = ref 0 in
  let setdiff_ops = ref 0 in

  (* Deterministic fractional accumulator: a batch of [n] base pages
     drags in [size_fraction * n] A/D pages on average. *)
  let read_carry = ref 0.0 in
  let extra_read_pages ~n_base =
    read_carry := !read_carry +. (config.size_fraction *. float_of_int n_base);
    let n = int_of_float !read_carry in
    read_carry := !read_carry -. float_of_int n;
    diff_pages_read := !diff_pages_read + n;
    n
  in

  (* Set-union / set-difference CPU: the number of differential pages a
     transaction references scales with its read set.  Under the optimal
     strategy the short-circuit scan saves the set-difference for pages
     with no qualifying tuple; the bigger the differential files, the
     more pages find one, so the qualification probability grows
     (sub-linearly) with the relative size of A and D. *)
  let qualify =
    Float.min 1.0 (config.qualify_prob *. ((config.size_fraction /. 0.10) ** 0.8))
  in
  let cpu_extra_ms ~txn ~page:_ ~write:_ =
    let n_diff = config.size_fraction *. float_of_int (Workload.read_set_size txn) in
    match config.strategy with
    | Basic ->
      incr setdiff_ops;
      config.setdiff_cpu_ms *. n_diff
    | Optimal ->
      if Dbm_util.Prng.bool ctx.Arch.rng ~p:qualify then begin
        incr setdiff_ops;
        config.setdiff_cpu_ms *. n_diff
      end
      else 0.0
  in

  let outs : (int, txn_out) Hashtbl.t = Hashtbl.create 16 in
  let out_of txn_id =
    match Hashtbl.find_opt outs txn_id with
    | Some o -> o
    | None ->
      let o = { fill = 0.0; outstanding = 0; commit_k = None } in
      Hashtbl.replace outs txn_id o;
      o
  in
  let one_written o () =
    o.outstanding <- o.outstanding - 1;
    if o.outstanding = 0 then
      match o.commit_k with
      | Some k ->
        o.commit_k <- None;
        k ()
      | None -> ()
  in
  let flush_output o ~disk =
    o.outstanding <- o.outstanding + 1;
    incr output_pages_written;
    let page = ctx.Arch.diff_append_page ~disk in
    Drive.submit ctx.Arch.data_drives.(disk) Drive.Write ~pages:[ page ] (one_written o)
  in

  (* Updates append a fraction of an output page to the A file; the
     frame is released as soon as the tuples are copied out, and a
     physical write happens once a whole output page has accumulated. *)
  let write_back ~txn ~page ~written =
    let o = out_of txn.Workload.id in
    let d, _ = Config.locate cfg ~page in
    o.fill <- o.fill +. config.output_fraction;
    if o.fill >= 1.0 then begin
      o.fill <- o.fill -. 1.0;
      flush_output o ~disk:d
    end;
    written ()
  in

  let on_commit ~txn ~k =
    match Hashtbl.find_opt outs txn.Workload.id with
    | None -> k ()
    | Some o ->
      Hashtbl.remove outs txn.Workload.id;
      (* Fragmentation: the final partial output page is written too. *)
      if o.fill > 0.0 then begin
        o.fill <- 0.0;
        let d = Dbm_util.Prng.int ctx.Arch.rng (Array.length ctx.Arch.data_drives) in
        flush_output o ~disk:d
      end;
      if o.outstanding = 0 then k () else o.commit_k <- Some k
  in

  let extra_stats () =
    [
      ("diff_pages_read", float_of_int !diff_pages_read);
      ("output_pages_written", float_of_int !output_pages_written);
      ("setdiff_ops", float_of_int !setdiff_ops);
    ]
  in

  Arch.make ~extra_read_pages ~cpu_extra_ms ~write_back ~on_commit ~extra_stats
    (Printf.sprintf "diff-file-%s-%.0f%%"
       (match config.strategy with Basic -> "basic" | Optimal -> "optimal")
       (100.0 *. config.size_fraction))
