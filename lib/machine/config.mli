(** Database machine configuration.

    The paper's baseline machine has 25 query processors (VAX 11/750
    class), 100 cache frames of 4 KB, and 2 data disks (IBM 3350 or
    parallel-access); Table 3 uses a larger machine with 75 query
    processors and 150 frames. *)

type arrivals =
  | Batch  (** the paper's closed model: all transactions queued at t=0 *)
  | Poisson of float
      (** open model (extension): exponential interarrival times with
          the given mean in ms; completion times then measure response
          time from arrival, including any admission wait *)

type scratch_placement =
  | Adjacent  (** scratch ring right above the data zone (short seeks) *)
  | Far_end  (** scratch ring at the far end of the disk (long seeks) *)

type t = {
  n_query_processors : int;
  n_cache_frames : int;
  n_data_disks : int;
  disk : Dbm_disk.Params.t;
  layout : Dbm_disk.Layout.t;  (** physical layout of the drives *)
  data_scramble : int option;
      (** when set, data pages are scattered (by a seeded permutation)
          within each disk's data zone instead of staying physically
          clustered — the shadow-mechanism drift of Table 7 *)
  cpu_ms_per_page : float;  (** query-processor time to process one page *)
  mpl : int;  (** multiprogramming level (concurrent transactions) *)
  read_batch : int;  (** max pages per anticipatory read batch *)
  db_pages : int;  (** database size in pages, striped over the disks *)
  page_size_bytes : int;
  scratch_placement : scratch_placement;
      (** where the overwriting architectures' scratch ring lives; the
          paper's arm-travel penalty assumes {!Far_end} (the default) —
          {!Adjacent} is the ablation *)
  drive_coalesce : bool;
      (** whether parallel-access data drives absorb queued same-kind
          same-cylinder requests into one access (Section 4.1.2);
          disabling it is an ablation *)
  arrivals : arrivals;
  seed : int;  (** seed for machine-internal randomness *)
}

val paper_base : t
(** 25 QPs, 100 frames, 2 conventional (IBM 3350) disks, 16,384-page
    database. *)

val with_parallel_disks : t -> t
(** Swap the data disks for parallel-access drives. *)

val with_scramble : int -> t -> t
(** Scatter the data pages within each disk's data zone using the given
    permutation seed. *)

val table3_machine : t
(** The Section 4.1.2 machine: 75 QPs, 150 frames, 2 parallel-access
    disks. *)

val validate : t -> unit
(** @raise Invalid_argument when the configuration is inconsistent
    (e.g. database larger than the disks, non-positive counts). *)

val feed_digest : Dbm_util.Digest.t -> t -> unit
(** Feed every result-affecting field into a run digest, in declaration
    order (canonical-serialization contract of {!Dbm_util.Digest}). *)

val pages_per_disk : t -> int

val data_zone_pages : t -> int
(** Pages reserved for the data zone on each disk: [db_pages] striped in
    cylinder-sized chunks, rounded up to whole chunks. *)

val locate : t -> page:int -> int * int
(** [locate t ~page] is [(disk_index, disk_local_page)].  The database
    is striped across the disks in cylinder-sized chunks so that
    sequential runs stay physically sequential on each disk while both
    disks share the load. *)

val locate_fns : t -> (int -> int) * (int -> int)
(** [locate_fns t] is [(disk_of, local_of)] such that
    [locate t ~page = (disk_of page, local_of page)], with the
    geometry (and any scramble coefficients) resolved once so the
    per-page calls allocate nothing.  Partially apply outside loops. *)
