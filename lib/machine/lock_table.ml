type mode = Shared | Exclusive

type entry = { mutable holders : (int * mode) list }

type t = {
  pages : (int, entry) Hashtbl.t;
  by_owner : (int, int list ref) Hashtbl.t;
}

let create () = { pages = Hashtbl.create 256; by_owner = Hashtbl.create 16 }

(* [Hashtbl.clear] keeps the grown bucket arrays (unlike [reset]), which
   is the point: a recycled lock table re-serves the next run without
   re-growing.  No behaviour depends on bucket layout — the table is
   only ever probed per key, never iterated during a run. *)
let clear t =
  Hashtbl.clear t.pages;
  Hashtbl.clear t.by_owner

let compatible held requested =
  match held, requested with
  | Shared, Shared -> true
  | _ -> false

let strongest a b =
  match a, b with
  | Exclusive, _ | _, Exclusive -> Exclusive
  | Shared, Shared -> Shared

(* Collapse duplicate page requests to their strongest mode. *)
let normalize locks =
  let tbl = Hashtbl.create (List.length locks) in
  List.iter
    (fun (page, mode) ->
      match Hashtbl.find_opt tbl page with
      | None -> Hashtbl.replace tbl page mode
      | Some m -> Hashtbl.replace tbl page (strongest m mode))
    locks;
  Hashtbl.fold (fun page mode acc -> (page, mode) :: acc) tbl []

let grantable t ~owner ~page ~mode =
  match Hashtbl.find_opt t.pages page with
  | None -> true
  | Some e ->
    List.for_all (fun (o, held) -> o = owner || compatible held mode) e.holders

let can_acquire_all t ~owner ~locks =
  List.for_all (fun (page, mode) -> grantable t ~owner ~page ~mode) (normalize locks)

let record_owner t ~owner ~page =
  match Hashtbl.find_opt t.by_owner owner with
  | Some l -> l := page :: !l
  | None -> Hashtbl.replace t.by_owner owner (ref [ page ])

let acquire_all t ~owner ~locks =
  let locks = normalize locks in
  if not (can_acquire_all t ~owner ~locks) then false
  else begin
    List.iter
      (fun (page, mode) ->
        match Hashtbl.find_opt t.pages page with
        | None ->
          Hashtbl.replace t.pages page { holders = [ (owner, mode) ] };
          record_owner t ~owner ~page
        | Some e ->
          (match List.assoc_opt owner e.holders with
          | Some held ->
            e.holders <-
              (owner, strongest held mode) :: List.remove_assoc owner e.holders
          | None ->
            e.holders <- (owner, mode) :: e.holders;
            record_owner t ~owner ~page))
      locks;
    true
  end

let release_all t ~owner =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> ()
  | Some pages ->
    List.iter
      (fun page ->
        match Hashtbl.find_opt t.pages page with
        | None -> ()
        | Some e ->
          e.holders <- List.remove_assoc owner e.holders;
          if e.holders = [] then Hashtbl.remove t.pages page)
      !pages;
    Hashtbl.remove t.by_owner owner

let holds t ~owner ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> None
  | Some e -> List.assoc_opt owner e.holders

let locked_pages t = Hashtbl.length t.pages

let owners t = Hashtbl.fold (fun o _ acc -> o :: acc) t.by_owner []
