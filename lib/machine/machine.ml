module Engine = Dbm_sim.Engine
module Resource = Dbm_sim.Resource
module Drive = Dbm_disk.Drive
module Params = Dbm_disk.Params
module Workload = Dbm_workload.Workload
module Stats = Dbm_util.Stats

type txn_state = {
  txn : Workload.txn;
  mutable next_read : int;  (* next reference-string index to fetch *)
  mutable reads_in_flight : int;
  mutable processed : int;
  mutable dirty_pending : int;  (* updated frames not yet released *)
  mutable start_time : float;
  mutable commit_started : bool;
  mutable commit_done : bool;
  mutable finished : bool;
}

let ceil_div a b = (a + b - 1) / b

(* Machine-level scratch recycled alongside the simulator arena: the
   lock table and arrival-time map are probed per key only (never
   iterated during a run), so handing the next run a cleared-but-grown
   table cannot change its behaviour — it only skips re-growing the
   buckets on the major heap.  [Dbm_sim.Arena] cannot own these (the
   dependency points the other way), so the machine keeps its own
   domain-local slot, gated on the same switch. *)
type scratch = { locks : Lock_table.t; arrival_times : (int, float) Hashtbl.t }

let fresh_scratch () = { locks = Lock_table.create (); arrival_times = Hashtbl.create 16 }

let scratch_key = Domain.DLS.new_key fresh_scratch

let current_scratch () =
  if Dbm_sim.Arena.recycling_enabled () then begin
    let s = Domain.DLS.get scratch_key in
    Lock_table.clear s.locks;
    Hashtbl.clear s.arrival_times;
    s
  end
  else fresh_scratch ()

let run_gen ~trace ~config ~make_arch ~workload =
  Config.validate config;
  let arena = Dbm_sim.Arena.current () in
  let engine = Dbm_sim.Arena.begin_run arena in
  (* [emit] callers build their source/detail strings with sprintf; guard
     every call site on [tracing] so the untraced (common) path never
     pays for the formatting. *)
  let tracing = trace <> None in
  let emit ~source ~tag detail =
    match trace with
    | None -> ()
    | Some t -> Dbm_sim.Trace.emit t ~time:(Engine.now engine) ~source ~tag ~detail
  in
  let rng = Dbm_util.Prng.create config.Config.seed in
  let disk = config.Config.disk in
  let drives =
    Array.init config.Config.n_data_disks (fun i ->
        Drive.create engine ~params:disk ~layout:config.Config.layout
          ~name:(Printf.sprintf "data-%d" i)
          ~coalesce:config.Config.drive_coalesce ())
  in

  (* Disk zones: the database occupies the low cylinders of every drive;
     a scratch ring (overwriting architectures) sits just above it, and
     the differential zone (A and D files) above that.  Keeping the
     zones adjacent to the data keeps data<->scratch arm travel
     comparable to ordinary random seeks, as in the paper's setup. *)
  let per_cyl = Params.pages_per_cylinder disk in
  let data_cylinders = ceil_div (Config.data_zone_pages config) per_cyl in
  let zone_cylinders = (disk.Params.cylinders - data_cylinders - 2) / 2 in
  if zone_cylinders < 1 then invalid_arg "Machine.run: no room for scratch/diff zones";
  (* The differential zone sits right above the data (A/D pages are
     read together with base pages).  The scratch ring's position is a
     design choice: at the far end of the disk, overwriting pays the
     data<->scratch arm travel the paper describes (Section 4.2.4);
     adjacent placement is the ablation that removes it. *)
  let diff_len = zone_cylinders * per_cyl in
  let scratch_len = zone_cylinders * per_cyl in
  let diff_base, scratch_base =
    match config.Config.scratch_placement with
    | Config.Far_end ->
      (* A/D pages next to the data they are read with; scratch at the
         far end of the disk. *)
      ((data_cylinders + 1) * per_cyl, (disk.Params.cylinders - zone_cylinders) * per_cyl)
    | Config.Adjacent ->
      (* Ablation: scratch ring immediately above the data zone. *)
      ( (disk.Params.cylinders - zone_cylinders) * per_cyl,
        (data_cylinders + 1) * per_cyl )
  in
  let n_disks = config.Config.n_data_disks in
  let scratch_next = Array.make n_disks 0 in
  let diff_append_next = Array.make n_disks 0 in
  let scratch_page ~disk:d =
    let p = scratch_base + scratch_next.(d) in
    scratch_next.(d) <- (scratch_next.(d) + 1) mod scratch_len;
    p
  in
  let diff_read_pages ~disk:_ ~n =
    (* The A/D pages a transaction references are scattered over the
       differential zone (they were appended in commit order, not key
       order), so they read like random pages within the zone. *)
    List.init n (fun _ -> diff_base + Dbm_util.Prng.int rng diff_len)
  in
  let diff_append_page ~disk:d =
    let p = diff_base + diff_append_next.(d) in
    diff_append_next.(d) <- (diff_append_next.(d) + 1) mod diff_len;
    p
  in

  (* Cache frames. *)
  let free_frames = ref config.Config.n_cache_frames in
  let free_tw = Stats.Timeweighted.create () in
  let blocked_tw = Stats.Timeweighted.create () in
  let active_tw = Stats.Timeweighted.create () in
  let blocked_on_log = ref 0 in
  Stats.Timeweighted.update free_tw ~now:0.0 ~level:(float_of_int !free_frames);
  let note_free () =
    Stats.Timeweighted.update free_tw ~now:(Engine.now engine)
      ~level:(float_of_int !free_frames)
  in
  let note_blocked () =
    Stats.Timeweighted.update blocked_tw ~now:(Engine.now engine)
      ~level:(float_of_int !blocked_on_log)
  in

  (* [pump] is defined later; frame releases must re-trigger paging. *)
  let pump_ref = ref (fun () -> ()) in
  let take_frames n =
    if !free_frames >= n then begin
      free_frames := !free_frames - n;
      note_free ();
      true
    end
    else false
  in
  let release_frames n =
    free_frames := !free_frames + n;
    note_free ();
    !pump_ref ()
  in

  let disk_index_of_page, local_of_page = Config.locate_fns config in
  let drive_of_page page = (drives.(disk_index_of_page page), local_of_page page) in

  let ctx =
    {
      Arch.engine;
      rng;
      config;
      data_drives = drives;
      drive_of_page;
      scratch_page;
      diff_read_pages;
      diff_append_page;
      take_frames;
      release_frames;
    }
  in
  let arch = make_arch ctx in

  let qps =
    Dbm_sim.Arena.resource arena ~name:"query-processors"
      ~servers:config.Config.n_query_processors
  in

  let scratch = current_scratch () in
  let locks = scratch.locks in
  (* Closed model: the whole batch is waiting at t=0.  Open model: the
     waiting list fills as arrival events fire, and completion times
     run from each transaction's arrival. *)
  let waiting = ref (match config.Config.arrivals with
    | Config.Batch -> Array.to_list workload
    | Config.Poisson _ -> [])
  in
  let arrival_times = scratch.arrival_times in
  let active = ref [] in
  let completions = Stats.Acc.create () in
  let completion_list = ref [] in
  let pages_processed = ref 0 in
  let last_done = ref 0.0 in
  let done_count = ref 0 in

  let note_active active =
    Stats.Timeweighted.update active_tw ~now:(Engine.now engine)
      ~level:(float_of_int (List.length active))
  in

  let lock_set (txn : Workload.txn) =
    Array.to_list
      (Array.mapi
         (fun i page ->
           (page, if txn.Workload.writes.(i) then Lock_table.Exclusive else Lock_table.Shared))
         txn.Workload.pages)
  in

  let rec admit () =
    if List.length !active < config.Config.mpl then begin
      (* Admit the first waiting transaction whose whole lock set is
         grantable (static locking: all-or-nothing at admission). *)
      let rec scan acc = function
        | [] -> None
        | txn :: rest ->
          if Lock_table.acquire_all locks ~owner:txn.Workload.id ~locks:(lock_set txn) then
            Some (txn, List.rev_append acc rest)
          else scan (txn :: acc) rest
      in
      match scan [] !waiting with
      | None -> ()
      | Some (txn, rest) ->
        waiting := rest;
        let start_time =
          match Hashtbl.find_opt arrival_times txn.Workload.id with
          | Some t -> t
          | None -> Engine.now engine
        in
        let ts =
          {
            txn;
            next_read = 0;
            reads_in_flight = 0;
            processed = 0;
            dirty_pending = 0;
            start_time;
            commit_started = false;
            commit_done = false;
            finished = false;
          }
        in
        active := !active @ [ ts ];
        note_active !active;
        if tracing then
          emit ~source:(Printf.sprintf "txn %d" txn.Workload.id) ~tag:"admit"
            (Printf.sprintf "%d pages, %d writes" (Array.length txn.Workload.pages)
               (Workload.write_set_size txn));
        admit ()
    end
  in

  let finish_txn ts =
    let now = Engine.now engine in
    Stats.Acc.add completions (now -. ts.start_time);
    completion_list := (ts.txn.Workload.id, now -. ts.start_time) :: !completion_list;
    if tracing then
      emit ~source:(Printf.sprintf "txn %d" ts.txn.Workload.id) ~tag:"finish"
        (Printf.sprintf "completion %.1f ms" (now -. ts.start_time));
    last_done := Float.max !last_done now;
    incr done_count;
    active := List.filter (fun t -> t != ts) !active;
    note_active !active;
    Lock_table.release_all locks ~owner:ts.txn.Workload.id;
    admit ();
    !pump_ref ()
  in

  (* The commit protocol (log force, page-table writes, shadow
     installation, ...) starts as soon as every page is processed; the
     transaction finishes once the protocol is done AND its last dirty
     frame has reached disk — the paper's completion-time endpoint.
     Starting the protocol before the dirty writes drain matters: with
     write-ahead logging the commit force is what releases the last
     fragments' data pages. *)
  let check_commit ts =
    let n = Array.length ts.txn.Workload.pages in
    let maybe_finish () =
      if ts.commit_done && ts.dirty_pending = 0 && not ts.finished then begin
        ts.finished <- true;
        finish_txn ts
      end
    in
    if
      (not ts.commit_started)
      && ts.next_read >= n
      && ts.reads_in_flight = 0
      && ts.processed = n
    then begin
      ts.commit_started <- true;
      if tracing then
        emit ~source:(Printf.sprintf "txn %d" ts.txn.Workload.id) ~tag:"commit"
          (Printf.sprintf "%d dirty pending" ts.dirty_pending);
      arch.Arch.on_commit ~txn:ts.txn ~k:(fun () ->
          ts.commit_done <- true;
          maybe_finish ())
    end
    else maybe_finish ()
  in

  let default_write_back ~txn:_ ~page ~written =
    let drive, local = drive_of_page page in
    Drive.submit drive Drive.Write ~pages:[ local ] written
  in
  let write_back =
    match arch.Arch.write_back with Some f -> f | None -> default_write_back
  in

  (* Pseudo query-processor identity: FCFS dispatch over identical
     servers behaves round-robin under load, so number the dispatches
     mod the pool size.  Gives Qp_mod log-processor selection a real
     QP number to hash. *)
  let next_qp = ref 0 in
  let qp_done ts idx page =
    let qp = !next_qp in
    next_qp := (!next_qp + 1) mod config.Config.n_query_processors;
    ts.processed <- ts.processed + 1;
    incr pages_processed;
    if ts.txn.Workload.writes.(idx) then begin
      ts.dirty_pending <- ts.dirty_pending + 1;
      incr blocked_on_log;
      note_blocked ();
      arch.Arch.on_update ~txn:ts.txn ~page ~qp ~release:(fun () ->
          decr blocked_on_log;
          note_blocked ();
          write_back ~txn:ts.txn ~page ~written:(fun () ->
              ts.dirty_pending <- ts.dirty_pending - 1;
              release_frames 1;
              check_commit ts))
    end
    else release_frames 1;
    (* Always re-check: when the LAST processed page is an update, the
       commit protocol must start now — under write-ahead logging it is
       the commit force that unblocks that very page's write-back. *)
    check_commit ts
  in

  let process_page ts idx page =
    let write = ts.txn.Workload.writes.(idx) in
    let service =
      config.Config.cpu_ms_per_page
      +. arch.Arch.cpu_extra_ms ~txn:ts.txn ~page ~write
    in
    Resource.submit qps ~service (fun () -> qp_done ts idx page)
  in

  let on_batch_arrival ts group () =
    ts.reads_in_flight <- ts.reads_in_flight - List.length group;
    List.iter (fun (idx, page) -> process_page ts idx page) group;
    check_commit ts
  in

  (* Issue one anticipatory read batch for [ts]; true if progress.
     When frames trickle back one at a time, wait until a full batch's
     worth is free rather than issuing degenerate one-page reads — but
     never hold back a transaction with nothing in flight. *)
  let issue_batch ts =
    let n = Array.length ts.txn.Workload.pages in
    let remaining = n - ts.next_read in
    if remaining <= 0 || !free_frames <= 0 then false
    else begin
      let want = min remaining config.Config.read_batch in
      (* half a batch is worth waiting for; less is not *)
      if 2 * !free_frames < want && ts.reads_in_flight > 0 then false
      else begin
      let take = min want !free_frames in
      let first = ts.next_read in
      ts.next_read <- ts.next_read + take;
      ts.reads_in_flight <- ts.reads_in_flight + take;
      free_frames := !free_frames - take;
      note_free ();
      (* Group the batch per drive, preserving reference order. *)
      let groups = Hashtbl.create 4 in
      for i = first to first + take - 1 do
        let page = ts.txn.Workload.pages.(i) in
        let d = disk_index_of_page page in
        let prev = Option.value (Hashtbl.find_opt groups d) ~default:[] in
        Hashtbl.replace groups d ((i, page) :: prev)
      done;
      if tracing then
        emit ~source:(Printf.sprintf "txn %d" ts.txn.Workload.id) ~tag:"read"
          (Printf.sprintf "batch of %d pages from index %d" take first);
      Hashtbl.iter
        (fun d rev_group ->
          let group = List.rev rev_group in
          (* Gate every page of the group through [before_read]; the
             disk request is issued once all gates open (e.g. all the
             page-table entries have been fetched). *)
          let gates = ref (List.length group) in
          let proceed () =
            decr gates;
            if !gates = 0 then begin
              let locals = List.map (fun (_, page) -> local_of_page page) group in
              let extra =
                arch.Arch.extra_read_pages ~n_base:(List.length group)
              in
              let extra_pages = if extra > 0 then diff_read_pages ~disk:d ~n:extra else [] in
              Drive.submit drives.(d) ~extra_transfers:arch.Arch.read_extra_transfers
                Drive.Read ~pages:(locals @ extra_pages) (on_batch_arrival ts group)
            end
          in
          List.iter
            (fun (_, page) -> arch.Arch.before_read ~txn:ts.txn ~page ~k:proceed)
            group)
        groups;
      true
      end
    end
  in

  let pump () =
    let progress = ref true in
    while !progress do
      progress := false;
      List.iter (fun ts -> if issue_batch ts then progress := true) !active
    done
  in
  pump_ref := pump;

  (match config.Config.arrivals with
  | Config.Batch -> admit ()
  | Config.Poisson mean ->
    let arrival_rng = Dbm_util.Prng.split rng in
    let clock = ref 0.0 in
    Array.iter
      (fun (txn : Workload.txn) ->
        clock := !clock +. Dbm_util.Prng.exponential arrival_rng ~mean;
        let at = !clock in
        ignore
          (Engine.schedule_at engine ~time:at (fun () ->
               Hashtbl.replace arrival_times txn.Workload.id (Engine.now engine);
               waiting := !waiting @ [ txn ];
               admit ();
               !pump_ref ())))
      workload);
  pump ();
  Engine.run engine;

  let n_txns = Array.length workload in
  if !done_count <> n_txns then begin
    let describe ts =
      Printf.sprintf
        "txn %d: n=%d next_read=%d in_flight=%d processed=%d dirty=%d commit_started=%b          commit_done=%b"
        ts.txn.Workload.id
        (Array.length ts.txn.Workload.pages)
        ts.next_read ts.reads_in_flight ts.processed ts.dirty_pending ts.commit_started
        ts.commit_done
    in
    failwith
      (Printf.sprintf
         "Machine.run: simulation stalled under %s: %d of %d transactions completed;           free_frames=%d waiting=%d active=[%s]"
         arch.Arch.arch_name !done_count n_txns !free_frames
         (List.length !waiting)
         (String.concat "; " (List.map describe !active)))
  end;

  let makespan = !last_done in
  let now = Engine.now engine in
  let disk_reports =
    Array.to_list
      (Array.map
         (fun d ->
           {
             Results.disk_name = Drive.name d;
             utilization = Drive.utilization d;
             accesses = Drive.access_count d;
             pages = Drive.pages_transferred d;
           })
         drives)
  in
  {
    Results.makespan_ms = makespan;
    pages_processed = !pages_processed;
    exec_ms_per_page =
      (if !pages_processed = 0 then 0.0 else makespan /. float_of_int !pages_processed);
    mean_completion_ms = Stats.Acc.mean completions;
    max_completion_ms = (if n_txns = 0 then 0.0 else Stats.Acc.max completions);
    n_transactions = n_txns;
    data_disks = disk_reports;
    qp_utilization = Resource.utilization qps;
    mean_frames_blocked_on_log = Stats.Timeweighted.mean blocked_tw ~now;
    mean_free_frames = Stats.Timeweighted.mean free_tw ~now;
    mean_active_txns = Stats.Timeweighted.mean active_tw ~now;
    data_disk_accesses =
      List.fold_left (fun acc (r : Results.disk_report) -> acc + r.accesses) 0 disk_reports;
    completions = List.rev !completion_list;
    extra = arch.Arch.extra_stats ();
  }

let run ~config ~make_arch ~workload = run_gen ~trace:None ~config ~make_arch ~workload

let run_traced ~trace ~config ~make_arch ~workload =
  run_gen ~trace:(Some trace) ~config ~make_arch ~workload
