type arrivals = Batch | Poisson of float

type scratch_placement = Adjacent | Far_end

type t = {
  n_query_processors : int;
  n_cache_frames : int;
  n_data_disks : int;
  disk : Dbm_disk.Params.t;
  layout : Dbm_disk.Layout.t;
  data_scramble : int option;
  cpu_ms_per_page : float;
  mpl : int;
  read_batch : int;
  db_pages : int;
  page_size_bytes : int;
  scratch_placement : scratch_placement;
  drive_coalesce : bool;
  arrivals : arrivals;
  seed : int;
}

let paper_base =
  {
    n_query_processors = 25;
    n_cache_frames = 100;
    n_data_disks = 2;
    disk = Dbm_disk.Params.ibm_3350;
    layout = Dbm_disk.Layout.Sequential;
    data_scramble = None;
    cpu_ms_per_page = 40.0;
    mpl = 3;
    read_batch = 16;
    db_pages = 16384;
    page_size_bytes = 4096;
    scratch_placement = Far_end;
    drive_coalesce = true;
    arrivals = Batch;
    seed = 7;
  }

let with_parallel_disks t = { t with disk = Dbm_disk.Params.parallel_access }

let with_scramble seed t = { t with data_scramble = Some seed }

let table3_machine =
  {
    paper_base with
    n_query_processors = 75;
    n_cache_frames = 150;
    disk = Dbm_disk.Params.parallel_access;
    mpl = 4;
    read_batch = 32;
  }

(* Canonical serialization for content-addressed run caching: every
   field that can influence a simulation result is fed, in declaration
   order, with variant constructors reduced to tags. *)
let feed_digest d t =
  let module D = Dbm_util.Digest in
  D.string d "machine-config";
  D.int d t.n_query_processors;
  D.int d t.n_cache_frames;
  D.int d t.n_data_disks;
  Dbm_disk.Params.feed_digest d t.disk;
  Dbm_disk.Layout.feed_digest d t.layout;
  (match t.data_scramble with
  | None -> D.tag d 0
  | Some s ->
    D.tag d 1;
    D.int d s);
  D.float d t.cpu_ms_per_page;
  D.int d t.mpl;
  D.int d t.read_batch;
  D.int d t.db_pages;
  D.int d t.page_size_bytes;
  D.tag d (match t.scratch_placement with Adjacent -> 0 | Far_end -> 1);
  D.bool d t.drive_coalesce;
  (match t.arrivals with
  | Batch -> D.tag d 0
  | Poisson mean ->
    D.tag d 1;
    D.float d mean);
  D.int d t.seed

let pages_per_disk t = (t.db_pages + t.n_data_disks - 1) / t.n_data_disks

(* Size of the data zone on each disk: whole cylinder-sized chunks, so
   the last (possibly partial) stripe chunk still fits. *)
let data_zone_pages t =
  let chunk = Dbm_disk.Params.pages_per_cylinder t.disk in
  let total_chunks = (t.db_pages + chunk - 1) / chunk in
  let chunks_per_disk = (total_chunks + t.n_data_disks - 1) / t.n_data_disks in
  chunks_per_disk * chunk

let validate t =
  if t.n_query_processors <= 0 then invalid_arg "Config: need at least one query processor";
  if t.n_cache_frames <= 0 then invalid_arg "Config: need at least one cache frame";
  if t.n_data_disks <= 0 then invalid_arg "Config: need at least one data disk";
  if t.mpl <= 0 then invalid_arg "Config: multiprogramming level must be positive";
  if t.read_batch <= 0 then invalid_arg "Config: read batch must be positive";
  if t.cpu_ms_per_page < 0.0 then invalid_arg "Config: negative cpu cost";
  if t.db_pages <= 0 then invalid_arg "Config: empty database";
  (match t.arrivals with
  | Poisson mean when mean <= 0.0 -> invalid_arg "Config: non-positive interarrival mean"
  | Poisson _ | Batch -> ());
  (* Leave headroom on each disk for the scratch and differential zones. *)
  let capacity = Dbm_disk.Params.total_pages t.disk * t.n_data_disks in
  if t.db_pages * 2 > capacity then
    invalid_arg "Config: database does not fit in half the disk capacity"

let locate t ~page =
  if page < 0 || page >= t.db_pages then invalid_arg "Config.locate: page out of range";
  let chunk_pages = Dbm_disk.Params.pages_per_cylinder t.disk in
  let chunk = page / chunk_pages in
  let within = page mod chunk_pages in
  let disk = chunk mod t.n_data_disks in
  let local_chunk = chunk / t.n_data_disks in
  let local = (local_chunk * chunk_pages) + within in
  match t.data_scramble with
  | None -> (disk, local)
  | Some seed ->
    (* Scatter within the disk's data zone only: the scratch and
       differential zones keep their physical sequentiality. *)
    (disk, Dbm_disk.Layout.permutation ~seed ~n:(data_zone_pages t) local)

(* The same mapping as {!locate}, resolved once into a pair of
   allocation-free closures for per-page loops: no result tuple, and
   for scrambled configurations no trip through the shared permutation
   coefficient cache. *)
let locate_fns t =
  let chunk_pages = Dbm_disk.Params.pages_per_cylinder t.disk in
  let n_disks = t.n_data_disks in
  let db_pages = t.db_pages in
  let check page =
    if page < 0 || page >= db_pages then invalid_arg "Config.locate: page out of range"
  in
  let disk_of page =
    check page;
    page / chunk_pages mod n_disks
  in
  let plain page =
    check page;
    let chunk = page / chunk_pages in
    ((chunk / n_disks) * chunk_pages) + (page mod chunk_pages)
  in
  let local_of =
    match t.data_scramble with
    | None -> plain
    | Some seed ->
      let perm = Dbm_disk.Layout.permutation_fn ~seed ~n:(data_zone_pages t) in
      fun page -> perm (plain page)
  in
  (disk_of, local_of)
