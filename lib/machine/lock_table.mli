(** Page-level lock table for the back-end controller's scheduler.

    The paper assumes "a scheduler, located in the back-end controller,
    which employs page-level locking" (Section 3).  Because a compiled
    transaction's page references are known when it reaches the
    controller, the machine uses static (pre-declared) locking: a
    transaction acquires its whole lock set atomically at admission and
    releases it at completion, which is deadlock-free by construction. *)

type t

type mode = Shared | Exclusive

val create : unit -> t

val clear : t -> unit
(** Drop every lock while keeping the grown hash-table storage, so a
    per-domain arena can recycle one lock table across runs.  After
    [clear] the table is observationally [create ()]. *)

val compatible : mode -> mode -> bool
(** [compatible held requested]: only [Shared]/[Shared] is compatible. *)

val can_acquire_all : t -> owner:int -> locks:(int * mode) list -> bool
(** Would the whole set be grantable right now?  Locks already held by
    [owner] never conflict with its own request. *)

val acquire_all : t -> owner:int -> locks:(int * mode) list -> bool
(** All-or-nothing: acquire every lock or none.  Returns whether the
    acquisition succeeded.  Requesting the same page twice upgrades to
    the stronger mode. *)

val release_all : t -> owner:int -> unit
(** Release every lock held by [owner]. *)

val holds : t -> owner:int -> page:int -> mode option

val locked_pages : t -> int
(** Number of pages with at least one lock. *)

val owners : t -> int list
(** Distinct owners currently holding locks, unordered. *)
