type pattern =
  | Random_access
  | Sequential
  | Hotspot of { hot_fraction : float; hot_access_prob : float }
  | Zipfian of { theta : float }

type txn = { id : int; pages : int array; writes : bool array }

type config = {
  n_transactions : int;
  min_pages : int;
  max_pages : int;
  write_fraction : float;
  pattern : pattern;
  db_pages : int;
  seed : int;
}

let default =
  {
    n_transactions = 50;
    min_pages = 1;
    max_pages = 250;
    write_fraction = 0.20;
    pattern = Random_access;
    db_pages = 16384;
    seed = 42;
  }

let feed_config d c =
  let module D = Dbm_util.Digest in
  D.string d "workload-config";
  D.int d c.n_transactions;
  D.int d c.min_pages;
  D.int d c.max_pages;
  D.float d c.write_fraction;
  (match c.pattern with
  | Random_access -> D.tag d 0
  | Sequential -> D.tag d 1
  | Hotspot { hot_fraction; hot_access_prob } ->
    D.tag d 2;
    D.float d hot_fraction;
    D.float d hot_access_prob
  | Zipfian { theta } ->
    D.tag d 3;
    D.float d theta);
  D.int d c.db_pages;
  D.int d c.seed

let validate c =
  if c.n_transactions < 0 then invalid_arg "Workload: negative transaction count";
  if c.min_pages < 1 || c.max_pages < c.min_pages then
    invalid_arg "Workload: bad page-count range";
  if c.db_pages < c.max_pages then invalid_arg "Workload: database smaller than max_pages";
  if c.write_fraction < 0.0 || c.write_fraction > 1.0 then
    invalid_arg "Workload: write_fraction out of [0,1]";
  match c.pattern with
  | Hotspot { hot_fraction; hot_access_prob } ->
    if hot_fraction <= 0.0 || hot_fraction >= 1.0 then
      invalid_arg "Workload: hot_fraction out of (0,1)";
    if hot_access_prob < 0.0 || hot_access_prob > 1.0 then
      invalid_arg "Workload: hot_access_prob out of [0,1]";
    if int_of_float (hot_fraction *. float_of_int c.db_pages) < c.max_pages then
      invalid_arg "Workload: hot region smaller than max_pages"
  | Zipfian { theta } ->
    if theta <= 0.0 || not (Float.is_finite theta) then
      invalid_arg "Workload: zipfian theta must be positive and finite"
  | Random_access | Sequential -> ()

(* Unnormalized Zipf CDF over page ranks: cdf.(r) = sum_{i<=r} 1/(i+1)^theta.
   Page 0 is the hottest; a draw is a binary search for the first rank
   whose cumulative weight exceeds a uniform draw on [0, total). *)
let zipf_cdf ~theta ~n =
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) theta);
    cdf.(r) <- !acc
  done;
  cdf

let zipf_draw rng cdf =
  let n = Array.length cdf in
  let u = Dbm_util.Prng.float rng cdf.(n - 1) in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

(* --- transaction-size distributions -------------------------------- *)

type size_dist =
  | Uniform_size
  | Pareto_size of { alpha : float }
  | Lognormal_size of { mu : float; sigma : float }

let validate_size_dist = function
  | Uniform_size -> ()
  | Pareto_size { alpha } ->
    if alpha <= 0.0 || not (Float.is_finite alpha) then
      invalid_arg "Workload: pareto alpha must be positive and finite"
  | Lognormal_size { mu; sigma } ->
    if not (Float.is_finite mu) then invalid_arg "Workload: lognormal mu must be finite";
    if sigma <= 0.0 || not (Float.is_finite sigma) then
      invalid_arg "Workload: lognormal sigma must be positive and finite"

let feed_size_dist d s =
  let module D = Dbm_util.Digest in
  D.string d "workload-size-dist";
  match s with
  | Uniform_size -> D.tag d 0
  | Pareto_size { alpha } ->
    D.tag d 1;
    D.float d alpha
  | Lognormal_size { mu; sigma } ->
    D.tag d 2;
    D.float d mu;
    D.float d sigma

(* Draw a transaction size in [min_pages, max_pages].  The heavy-tailed
   draws are clamped into the configured range, so the tail mass piles
   up at max_pages instead of escaping the database. *)
let draw_size rng c = function
  | Uniform_size -> Dbm_util.Prng.int_in rng ~lo:c.min_pages ~hi:c.max_pages
  | Pareto_size { alpha } ->
    (* Classic Pareto with scale = min_pages: size = min * U^(-1/alpha). *)
    let u = 1.0 -. Dbm_util.Prng.float rng 1.0 in
    let x = float_of_int c.min_pages *. Float.pow u (-1.0 /. alpha) in
    min c.max_pages (max c.min_pages (int_of_float (Float.round x)))
  | Lognormal_size { mu; sigma } ->
    let x = Float.exp (Dbm_util.Prng.gaussian rng ~mean:mu ~stddev:sigma) in
    min c.max_pages (max c.min_pages (int_of_float (Float.round x)))

let gen_txn ?zipf ?(size_dist = Uniform_size) rng c id =
  let n = draw_size rng c size_dist in
  let pages =
    match c.pattern with
    | Random_access -> Dbm_util.Prng.sample_distinct rng ~n ~lo:0 ~hi:(c.db_pages - 1)
    | Zipfian _ ->
      (* Skewed draws with duplicate rejection, as with Hotspot: the
         reference string stays a set.  The CDF is precomputed once per
         [generate], not per transaction. *)
      let cdf =
        match zipf with
        | Some cdf -> cdf
        | None -> assert false (* [generate] always precomputes it *)
      in
      let seen = Hashtbl.create (2 * n) in
      let out = Array.make n 0 in
      let filled = ref 0 in
      while !filled < n do
        let p = zipf_draw rng cdf in
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.add seen p ();
          out.(!filled) <- p;
          incr filled
        end
      done;
      out
    | Sequential ->
      let start = Dbm_util.Prng.int rng (c.db_pages - n + 1) in
      Array.init n (fun i -> start + i)
    | Hotspot { hot_fraction; hot_access_prob } ->
      (* Hot pages live in a prefix of the database.  Draw each page
         from the hot or cold region and reject duplicates so the
         reference string stays a set, as with Random_access. *)
      let hot_pages = int_of_float (hot_fraction *. float_of_int c.db_pages) in
      let seen = Hashtbl.create (2 * n) in
      let out = Array.make n 0 in
      let filled = ref 0 in
      while !filled < n do
        let p =
          if Dbm_util.Prng.bool rng ~p:hot_access_prob then Dbm_util.Prng.int rng hot_pages
          else hot_pages + Dbm_util.Prng.int rng (c.db_pages - hot_pages)
        in
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.add seen p ();
          out.(!filled) <- p;
          incr filled
        end
      done;
      out
  in
  (* The write set is a random subset of the read set: mark
     [round (write_fraction * n)] distinct positions. *)
  let n_writes =
    let w = int_of_float (Float.round (c.write_fraction *. float_of_int n)) in
    min n (max 0 w)
  in
  let writes = Array.make n false in
  let positions = Dbm_util.Prng.sample_distinct rng ~n:n_writes ~lo:0 ~hi:(n - 1) in
  Array.iter (fun i -> writes.(i) <- true) positions;
  { id; pages; writes }

let generate_with ?(size_dist = Uniform_size) c =
  validate c;
  validate_size_dist size_dist;
  let rng = Dbm_util.Prng.create c.seed in
  let zipf =
    match c.pattern with
    | Zipfian { theta } -> Some (zipf_cdf ~theta ~n:c.db_pages)
    | Random_access | Sequential | Hotspot _ -> None
  in
  Array.init c.n_transactions (fun id -> gen_txn ?zipf ~size_dist rng c id)

let generate c = generate_with c

(* A read-only transaction class carved out of a generated workload:
   each transaction independently becomes read-only (every write flag
   cleared) with probability [read_frac].  Separate from
   [write_fraction], which thins writes *within* a transaction — a
   server's transaction classes differ per transaction, not per page. *)
let apply_read_fraction rng ~read_frac txns =
  if read_frac < 0.0 || read_frac > 1.0 then
    invalid_arg "Workload.apply_read_fraction: read_frac out of [0,1]";
  Array.map
    (fun t ->
      if Dbm_util.Prng.bool rng ~p:read_frac then
        { t with writes = Array.make (Array.length t.writes) false }
      else t)
    txns

(* A cross-class transaction mix carved out of a generated workload,
   for the sharded server: [class_of] partitions the pages (in practice
   the shard router), and each transaction is remapped to either stay
   inside one class or deliberately span at least two.  Pages are
   re-homed by linear probing from their original value, so the remap
   preserves the workload's shape (sizes, write positions, rough
   locality) while making the cross-class population exact: with
   [cross_frac = 0.] the output has {e zero} cross-class transactions,
   which is what lets a sharded run stay deterministic. *)
let apply_cross_fraction rng ~cross_frac ~classes ~class_of ~db_pages txns =
  if cross_frac < 0.0 || cross_frac > 1.0 then
    invalid_arg "Workload.apply_cross_fraction: cross_frac out of [0,1]";
  if classes < 1 then invalid_arg "Workload.apply_cross_fraction: classes must be >= 1";
  if db_pages < 1 then invalid_arg "Workload.apply_cross_fraction: db_pages must be >= 1";
  (* First page q >= probe start (mod db_pages) in class [c] not already
     used by this transaction. *)
  let rehome used ~start ~c =
    let q = ref (((start mod db_pages) + db_pages) mod db_pages) in
    let tries = ref 0 in
    while !tries < db_pages && not (class_of !q = c && not (Hashtbl.mem used !q)) do
      q := (!q + 1) mod db_pages;
      incr tries
    done;
    if !tries >= db_pages then
      invalid_arg "Workload.apply_cross_fraction: class has too few free pages";
    Hashtbl.add used !q ();
    !q
  in
  Array.map
    (fun t ->
      let n = Array.length t.pages in
      let cross = Dbm_util.Prng.bool rng ~p:cross_frac && n >= 2 && classes >= 2 in
      if cross then begin
        let spans =
          n > 0
          && Array.exists (fun p -> class_of p <> class_of t.pages.(0)) t.pages
        in
        if spans then t
        else begin
          (* Confined to one class: re-home the last page into the next
             class over, keeping the rest in place. *)
          let used = Hashtbl.create (2 * n) in
          Array.iteri (fun i p -> if i < n - 1 then Hashtbl.add used p ()) t.pages;
          let c = (class_of t.pages.(0) + 1) mod classes in
          let pages = Array.copy t.pages in
          pages.(n - 1) <- rehome used ~start:pages.(n - 1) ~c;
          { t with pages }
        end
      end
      else begin
        let c = if n = 0 then 0 else class_of t.pages.(0) in
        if Array.for_all (fun p -> class_of p = c) t.pages then t
        else begin
          let used = Hashtbl.create (2 * n) in
          let pages =
            Array.map
              (fun p ->
                if class_of p = c && not (Hashtbl.mem used p) then begin
                  Hashtbl.add used p ();
                  p
                end
                else rehome used ~start:p ~c)
              t.pages
          in
          { t with pages }
        end
      end)
    txns

(* --- open-loop arrival processes ----------------------------------- *)

type arrival =
  | Poisson of { rate : float }
  | Bursty of { on_rate : float; off_rate : float; mean_on : float; mean_off : float }

let validate_arrival = function
  | Poisson { rate } ->
    if rate <= 0.0 || not (Float.is_finite rate) then
      invalid_arg "Workload: poisson rate must be positive and finite"
  | Bursty { on_rate; off_rate; mean_on; mean_off } ->
    if on_rate <= 0.0 || not (Float.is_finite on_rate) then
      invalid_arg "Workload: bursty on_rate must be positive and finite";
    if off_rate < 0.0 || not (Float.is_finite off_rate) then
      invalid_arg "Workload: bursty off_rate must be non-negative and finite";
    if mean_on <= 0.0 || mean_off <= 0.0 then
      invalid_arg "Workload: bursty phase lengths must be positive"

let feed_arrival d a =
  let module D = Dbm_util.Digest in
  D.string d "workload-arrival";
  match a with
  | Poisson { rate } ->
    D.tag d 0;
    D.float d rate
  | Bursty { on_rate; off_rate; mean_on; mean_off } ->
    D.tag d 1;
    D.float d on_rate;
    D.float d off_rate;
    D.float d mean_on;
    D.float d mean_off

let mean_rate = function
  | Poisson { rate } -> rate
  | Bursty { on_rate; off_rate; mean_on; mean_off } ->
    ((on_rate *. mean_on) +. (off_rate *. mean_off)) /. (mean_on +. mean_off)

let gen_arrival_times rng a ~n =
  validate_arrival a;
  if n < 0 then invalid_arg "Workload.gen_arrival_times: negative count";
  let out = Array.make n 0.0 in
  (match a with
  | Poisson { rate } ->
    let t = ref 0.0 in
    for i = 0 to n - 1 do
      t := !t +. Dbm_util.Prng.exponential rng ~mean:(1.0 /. rate);
      out.(i) <- !t
    done
  | Bursty { on_rate; off_rate; mean_on; mean_off } ->
    (* Alternating exponential on/off phases.  At a phase boundary the
       partial interarrival draw is discarded and redrawn at the new
       phase's rate — exactly right for exponential interarrivals
       (memorylessness), not an approximation. *)
    let t = ref 0.0 in
    let on = ref true in
    let phase_end = ref (Dbm_util.Prng.exponential rng ~mean:mean_on) in
    let switch () =
      t := !phase_end;
      on := not !on;
      phase_end :=
        !phase_end +. Dbm_util.Prng.exponential rng ~mean:(if !on then mean_on else mean_off)
    in
    let i = ref 0 in
    while !i < n do
      let rate = if !on then on_rate else off_rate in
      if rate <= 0.0 then switch () (* silent phase: skip to its end *)
      else begin
        let dt = Dbm_util.Prng.exponential rng ~mean:(1.0 /. rate) in
        if !t +. dt > !phase_end then switch ()
        else begin
          t := !t +. dt;
          out.(!i) <- !t;
          incr i
        end
      end
    done);
  out

let read_set_size t = Array.length t.pages

let write_set_size t = Array.fold_left (fun acc w -> if w then acc + 1 else acc) 0 t.writes

let write_pages t =
  let out = ref [] in
  for i = Array.length t.pages - 1 downto 0 do
    if t.writes.(i) then out := t.pages.(i) :: !out
  done;
  !out

let total_pages txns = Array.fold_left (fun acc t -> acc + read_set_size t) 0 txns

let total_writes txns = Array.fold_left (fun acc t -> acc + write_set_size t) 0 txns

let to_string txns =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun t ->
      Buffer.add_string buf (string_of_int t.id);
      Array.iteri
        (fun i page ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int page);
          if t.writes.(i) then Buffer.add_char buf '!')
        t.pages;
      Buffer.add_char buf '\n')
    txns;
  Buffer.contents buf

let of_string s =
  let parse_line line =
    match String.split_on_char ' ' (String.trim line) with
    | [] | [ "" ] -> None
    | id :: tokens ->
      let id =
        try int_of_string id
        with _ -> invalid_arg (Printf.sprintf "Workload.of_string: bad id %S" id)
      in
      let parse_token tok =
        let n = String.length tok in
        if n = 0 then invalid_arg "Workload.of_string: empty page token"
        else if tok.[n - 1] = '!' then
          ( (try int_of_string (String.sub tok 0 (n - 1))
             with _ -> invalid_arg (Printf.sprintf "Workload.of_string: bad page %S" tok)),
            true )
        else
          ( (try int_of_string tok
             with _ -> invalid_arg (Printf.sprintf "Workload.of_string: bad page %S" tok)),
            false )
      in
      let parsed = List.map parse_token tokens in
      Some
        {
          id;
          pages = Array.of_list (List.map fst parsed);
          writes = Array.of_list (List.map snd parsed);
        }
  in
  s |> String.split_on_char '\n' |> List.filter_map parse_line |> Array.of_list
