(** Transaction workload generator.

    Follows Section 4 of the paper: a transaction is modelled by the
    pages it accesses; the number of pages is uniform on
    [\[min_pages, max_pages\]] (1 to 250 in the paper); the reference
    string is either random (distinct pages drawn uniformly from the
    database) or sequential (a run of consecutive pages from a random
    starting point); and the write set is a random subset of the read
    set, [write_fraction] (20 %) of the pages read. *)

type pattern =
  | Random_access
  | Sequential
  | Hotspot of { hot_fraction : float; hot_access_prob : float }
      (** extension beyond the paper: a [hot_fraction] of the database
          receives [hot_access_prob] of the accesses (e.g. 0.05/0.8 for
          a 5%% region drawing 80%% of references), producing the page
          lock contention a uniform reference string never shows *)
  | Zipfian of { theta : float }
      (** extension beyond the paper: page [p] is referenced with
          probability proportional to [1/(p+1)^theta] (page 0 hottest),
          the skew standard benchmarks use ([theta] ~ 0.99 for
          YCSB-like traffic).  Larger [theta] = sharper skew. *)

type txn = {
  id : int;
  pages : int array;  (** logical page numbers, in reference order *)
  writes : bool array;  (** [writes.(i)] - [pages.(i)] is updated *)
}

type config = {
  n_transactions : int;
  min_pages : int;
  max_pages : int;
  write_fraction : float;
  pattern : pattern;
  db_pages : int;  (** database size in pages *)
  seed : int;
}

val default : config
(** The paper's workload: 1-250 pages uniform, 20 % writes, random
    pattern, 50 transactions over a 16,384-page database, seed 42. *)

val feed_config : Dbm_util.Digest.t -> config -> unit
(** Feed every field of the generator configuration into a run digest,
    in declaration order (canonical-serialization contract of
    {!Dbm_util.Digest}). *)

val generate : config -> txn array
(** Deterministic in [config.seed].
    @raise Invalid_argument on nonsensical configurations (empty
    database, [max_pages > db_pages], bad hotspot parameters,
    negative sizes, ...). *)

(** {2 Transaction-size distributions}

    The paper's workload draws transaction sizes uniformly; real
    transaction mixes are heavy-tailed — mostly small transactions with
    a long tail of big batch jobs.  A {!size_dist} replaces the uniform
    draw; the page-count range of the {!config} still clips every draw,
    so the tail mass accumulates at [max_pages]. *)

type size_dist =
  | Uniform_size  (** the paper's draw: uniform on [\[min_pages, max_pages\]] *)
  | Pareto_size of { alpha : float }
      (** power-law sizes: [min_pages * U^(-1/alpha)] clamped to the
          range.  Smaller [alpha] = heavier tail; [alpha ~ 1.5] gives
          the classic mostly-small / occasionally-huge mix *)
  | Lognormal_size of { mu : float; sigma : float }
      (** [round (exp (Normal(mu, sigma)))] clamped to the range *)

val validate_size_dist : size_dist -> unit
(** @raise Invalid_argument on non-positive [alpha]/[sigma] or a
    non-finite parameter. *)

val feed_size_dist : Dbm_util.Digest.t -> size_dist -> unit
(** Canonical digest feed, tagged per constructor. *)

val generate_with : ?size_dist:size_dist -> config -> txn array
(** {!generate} with the uniform size draw replaced by [size_dist]
    (default {!Uniform_size}, which makes [generate_with] and
    {!generate} identical streams).
    @raise Invalid_argument as {!generate}, or on a bad [size_dist]. *)

val apply_read_fraction :
  Dbm_util.Prng.t -> read_frac:float -> txn array -> txn array
(** Carve a read-only transaction class out of a workload: each
    transaction independently has its whole write set cleared with
    probability [read_frac] (the rest keep their writes).  Returns a
    fresh array; the input is not modified.
    @raise Invalid_argument if [read_frac] is outside [\[0,1\]]. *)

val apply_cross_fraction :
  Dbm_util.Prng.t ->
  cross_frac:float ->
  classes:int ->
  class_of:(int -> int) ->
  db_pages:int ->
  txn array ->
  txn array
(** Carve an exact cross-class transaction mix out of a workload for
    the sharded server.  [class_of] maps a page to its class in
    [\[0, classes)] (in practice {!Dbm_storage.Shard_router.shard_of_page}); each
    transaction is independently selected cross-class with probability
    [cross_frac] and remapped so that selected transactions span at
    least two classes while unselected ones are confined to the class
    of their first page (pages are re-homed by linear probing from
    their original value, preserving sizes and write positions).
    Transactions with fewer than two pages, or with [classes = 1],
    can never be cross-class.  With [cross_frac = 0.] the output has
    zero cross-class transactions — the property that keeps a sharded
    run deterministic.  Returns a fresh array.
    @raise Invalid_argument on [cross_frac] outside [\[0,1\]], a
    non-positive [classes]/[db_pages], or a class with too few pages to
    re-home into. *)

val read_set_size : txn -> int

val write_set_size : txn -> int

val write_pages : txn -> int list
(** Pages updated by the transaction, in reference order. *)

val total_pages : txn array -> int
(** Sum of read-set sizes: the "total number of pages processed by the
    machine" used as the denominator of execution time per page. *)

val total_writes : txn array -> int

val to_string : txn array -> string
(** Text serialization (one transaction per line: id, then
    [page] / [page!] tokens, [!] marking the write set).  Lets a
    workload be saved, inspected, diffed, and replayed exactly. *)

val of_string : string -> txn array
(** Inverse of {!to_string}.  @raise Invalid_argument on malformed
    input. *)

(** {2 Open-loop arrival processes}

    Closed-loop scripts (the scheduler's world) admit the next
    transaction when the previous one finishes; an {e open-loop} server
    receives arrivals on a clock that does not care how busy the
    server is — the regime where queueing delay and tail latency
    appear.  Times are in seconds; all randomness flows through
    {!Dbm_util.Prng}, so an arrival trace is exactly reproducible from
    its seed and digest-able for the run cache. *)

type arrival =
  | Poisson of { rate : float }
      (** memoryless arrivals at [rate] per second (exponential
          interarrivals with mean [1/rate]) *)
  | Bursty of { on_rate : float; off_rate : float; mean_on : float; mean_off : float }
      (** an on/off (interrupted-Poisson) process: alternating
          exponentially-long phases of mean [mean_on] / [mean_off]
          seconds, arriving at [on_rate] during on-phases and
          [off_rate] (may be 0) during off-phases *)

val validate_arrival : arrival -> unit
(** @raise Invalid_argument on non-positive rates or phase lengths
    ([off_rate] alone may be 0). *)

val feed_arrival : Dbm_util.Digest.t -> arrival -> unit
(** Canonical digest feed, tagged per constructor. *)

val mean_rate : arrival -> float
(** Long-run average arrivals per second (the offered load). *)

val gen_arrival_times : Dbm_util.Prng.t -> arrival -> n:int -> float array
(** The first [n] arrival instants, in seconds, strictly increasing
    from 0.  Deterministic in the generator state.
    @raise Invalid_argument on a bad process or negative [n]. *)
