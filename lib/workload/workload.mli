(** Transaction workload generator.

    Follows Section 4 of the paper: a transaction is modelled by the
    pages it accesses; the number of pages is uniform on
    [\[min_pages, max_pages\]] (1 to 250 in the paper); the reference
    string is either random (distinct pages drawn uniformly from the
    database) or sequential (a run of consecutive pages from a random
    starting point); and the write set is a random subset of the read
    set, [write_fraction] (20 %) of the pages read. *)

type pattern =
  | Random_access
  | Sequential
  | Hotspot of { hot_fraction : float; hot_access_prob : float }
      (** extension beyond the paper: a [hot_fraction] of the database
          receives [hot_access_prob] of the accesses (e.g. 0.05/0.8 for
          a 5%% region drawing 80%% of references), producing the page
          lock contention a uniform reference string never shows *)

type txn = {
  id : int;
  pages : int array;  (** logical page numbers, in reference order *)
  writes : bool array;  (** [writes.(i)] - [pages.(i)] is updated *)
}

type config = {
  n_transactions : int;
  min_pages : int;
  max_pages : int;
  write_fraction : float;
  pattern : pattern;
  db_pages : int;  (** database size in pages *)
  seed : int;
}

val default : config
(** The paper's workload: 1-250 pages uniform, 20 % writes, random
    pattern, 50 transactions over a 16,384-page database, seed 42. *)

val feed_config : Dbm_util.Digest.t -> config -> unit
(** Feed every field of the generator configuration into a run digest,
    in declaration order (canonical-serialization contract of
    {!Dbm_util.Digest}). *)

val generate : config -> txn array
(** Deterministic in [config.seed].
    @raise Invalid_argument on nonsensical configurations (empty
    database, [max_pages > db_pages], bad hotspot parameters,
    negative sizes, ...). *)

val read_set_size : txn -> int

val write_set_size : txn -> int

val write_pages : txn -> int list
(** Pages updated by the transaction, in reference order. *)

val total_pages : txn array -> int
(** Sum of read-set sizes: the "total number of pages processed by the
    machine" used as the denominator of execution time per page. *)

val total_writes : txn array -> int

val to_string : txn array -> string
(** Text serialization (one transaction per line: id, then
    [page] / [page!] tokens, [!] marking the write set).  Lets a
    workload be saved, inspected, diffed, and replayed exactly. *)

val of_string : string -> txn array
(** Inverse of {!to_string}.  @raise Invalid_argument on malformed
    input. *)
