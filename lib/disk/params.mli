(** Disk geometry and timing parameters.

    Two presets match the paper's hardware: {!ibm_3350}, the conventional
    moving-head drive the data and log disks were modelled after, and
    {!parallel_access}, the SURE/DBC-style drive on which "all pages on
    the different tracks of the same cylinder may be read or written in
    parallel in one disk access" (Section 4).

    Timing model:
    - a {e conventional} drive transfers one page per access:
      [seek + rotational latency + one page transfer];
    - a {e parallel-access} drive transfers, in one access, up to one page
      per track for every rotational slot position it sweeps:
      [seek + rotational latency + (distinct slot positions) * transfer]. *)

type t = {
  name : string;
  cylinders : int;
  tracks_per_cylinder : int;
  pages_per_track : int;
  track_to_track_seek_ms : float;  (** minimum (adjacent-cylinder) seek *)
  seek_ms_per_cylinder : float;  (** linear seek-distance coefficient *)
  rotation_ms : float;  (** one full revolution *)
  page_transfer_ms : float;  (** one 4 KB page *)
  parallel_access : bool;
}

val ibm_3350 : t
(** 555 cylinders x 30 tracks x 4 pages; ~25 ms average seek, 16.7 ms
    revolution, ~3.4 ms page transfer. *)

val parallel_access : t
(** Same geometry and timing as {!ibm_3350} but with per-cylinder
    parallel transfer, as proposed by SURE [17] and DBC [18]. *)

val pages_per_cylinder : t -> int

val total_pages : t -> int

val seek_time : t -> from_cyl:int -> to_cyl:int -> float
(** 0 when the cylinders are equal, otherwise
    [track_to_track + per_cylinder * (distance - 1)]. *)

val avg_rotational_latency : t -> float
(** Half a revolution. *)

val avg_seek : t -> float
(** Expected seek time over uniformly random start/end cylinders
    (mean distance ~ cylinders/3). *)

val feed_digest : Dbm_util.Digest.t -> t -> unit
(** Feed every field into a run digest (canonical-serialization
    contract of {!Dbm_util.Digest}). *)
