type loc = { cylinder : int; track : int; slot : int }

type t = Sequential | Scrambled of int

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* An affine permutation [p -> (a*p + b) mod n] with [gcd(a, n) = 1] is a
   deterministic bijection on [0, n).  With a large multiplier, logically
   adjacent pages land ~[a] pages apart, i.e. on far-apart cylinders,
   which is exactly the scattering the scrambled configuration models. *)
let scramble_coeffs seed n =
  let rng = Dbm_util.Prng.create (seed lxor 0x5deece66) in
  let rec pick_a () =
    let a = 1 + Dbm_util.Prng.int rng (n - 1) in
    (* Keep the multiplier away from 1 so neighbours really scatter. *)
    if gcd a n = 1 && a > n / 7 then a else pick_a ()
  in
  let a = if n <= 2 then 1 else pick_a () in
  let b = Dbm_util.Prng.int rng n in
  (a, b)

(* Coefficients depend only on (seed, capacity); memoize them so locating
   a page stays O(1).  The cache is shared by every simulation domain,
   hence the mutex; a race on the same key just recomputes the same
   deterministic pair. *)
let coeff_cache : (int * int, int * int) Hashtbl.t = Hashtbl.create 8

let coeff_lock = Mutex.create ()

let scramble_coeffs seed n =
  Mutex.lock coeff_lock;
  match Hashtbl.find_opt coeff_cache (seed, n) with
  | Some c ->
    Mutex.unlock coeff_lock;
    c
  | None ->
    Mutex.unlock coeff_lock;
    let c = scramble_coeffs seed n in
    Mutex.lock coeff_lock;
    Hashtbl.replace coeff_cache (seed, n) c;
    Mutex.unlock coeff_lock;
    c

let physical_index params layout ~page =
  if page < 0 then invalid_arg "Layout.locate: negative page";
  let n = Params.total_pages params in
  let p = page mod n in
  match layout with
  | Sequential -> p
  | Scrambled seed ->
    let a, b = scramble_coeffs seed n in
    ((a * p) + b) mod n

(* Resolve everything that depends only on (params, layout) once, so the
   per-page call is pure integer arithmetic: no [loc] record, and for
   scrambled layouts no trip through the mutex-guarded coefficient
   cache. *)
let cylinder_fn params layout =
  let n = Params.total_pages params in
  let per_cyl = Params.pages_per_cylinder params in
  match layout with
  | Sequential ->
    fun page ->
      if page < 0 then invalid_arg "Layout.locate: negative page";
      page mod n / per_cyl
  | Scrambled seed ->
    let a, b = scramble_coeffs seed n in
    fun page ->
      if page < 0 then invalid_arg "Layout.locate: negative page";
      ((a * (page mod n)) + b) mod n / per_cyl

let locate params layout ~page =
  let p = physical_index params layout ~page in
  let per_cyl = Params.pages_per_cylinder params in
  let cylinder = p / per_cyl in
  let within = p mod per_cyl in
  (* Slot-major: consecutive pages fill consecutive rotational slots of a
     track before moving to the next track of the cylinder. *)
  let track = within / params.Params.pages_per_track in
  let slot = within mod params.Params.pages_per_track in
  { cylinder; track; slot }

let same_cylinder params layout p q =
  (locate params layout ~page:p).cylinder = (locate params layout ~page:q).cylinder

let slot_positions params layout pages =
  let slots =
    List.sort_uniq Int.compare (List.map (fun p -> (locate params layout ~page:p).slot) pages)
  in
  List.length slots

let cylinders_spanned params layout pages =
  List.sort_uniq Int.compare (List.map (fun p -> (locate params layout ~page:p).cylinder) pages)

let permutation ~seed ~n x =
  if x < 0 || x >= n then invalid_arg "Layout.permutation: input out of range";
  if n <= 2 then x
  else begin
    let a, b = scramble_coeffs seed n in
    ((a * x) + b) mod n
  end

let feed_digest d t =
  let module D = Dbm_util.Digest in
  match t with
  | Sequential -> D.tag d 0
  | Scrambled seed ->
    D.tag d 1;
    D.int d seed

let permutation_fn ~seed ~n =
  if n <= 2 then fun x ->
    if x < 0 || x >= n then invalid_arg "Layout.permutation: input out of range";
    x
  else begin
    let a, b = scramble_coeffs seed n in
    fun x ->
      if x < 0 || x >= n then invalid_arg "Layout.permutation: input out of range";
      ((a * x) + b) mod n
  end
