type t = {
  name : string;
  cylinders : int;
  tracks_per_cylinder : int;
  pages_per_track : int;
  track_to_track_seek_ms : float;
  seek_ms_per_cylinder : float;
  rotation_ms : float;
  page_transfer_ms : float;
  parallel_access : bool;
}

(* IBM 3350: 555 cylinders, 30 tracks/cylinder, 19,069 bytes/track (four
   4 KB pages), 25 ms average seek, 10 ms track-to-track, 16.7 ms
   revolution, 1.198 MB/s transfer (3.4 ms per 4 KB page).  The linear
   seek coefficient is chosen so the mean seek over random distances
   (~ cylinders / 3) is 25 ms. *)
let ibm_3350 =
  {
    name = "ibm-3350";
    cylinders = 555;
    tracks_per_cylinder = 30;
    pages_per_track = 4;
    track_to_track_seek_ms = 10.0;
    seek_ms_per_cylinder = 0.082;
    rotation_ms = 16.7;
    page_transfer_ms = 3.4;
    parallel_access = false;
  }

let parallel_access = { ibm_3350 with name = "parallel-access"; parallel_access = true }

let pages_per_cylinder t = t.tracks_per_cylinder * t.pages_per_track

let total_pages t = t.cylinders * pages_per_cylinder t

let seek_time t ~from_cyl ~to_cyl =
  let d = abs (to_cyl - from_cyl) in
  if d = 0 then 0.0
  else t.track_to_track_seek_ms +. (t.seek_ms_per_cylinder *. float_of_int (d - 1))

let avg_rotational_latency t = t.rotation_ms /. 2.0

let avg_seek t =
  let mean_distance = float_of_int t.cylinders /. 3.0 in
  t.track_to_track_seek_ms +. (t.seek_ms_per_cylinder *. (mean_distance -. 1.0))

(* Every field participates: two drives that differ anywhere in
   geometry or timing must never share a run digest. *)
let feed_digest d t =
  let module D = Dbm_util.Digest in
  D.string d "disk-params";
  D.string d t.name;
  D.int d t.cylinders;
  D.int d t.tracks_per_cylinder;
  D.int d t.pages_per_track;
  D.float d t.track_to_track_seek_ms;
  D.float d t.seek_ms_per_cylinder;
  D.float d t.rotation_ms;
  D.float d t.page_transfer_ms;
  D.bool d t.parallel_access
