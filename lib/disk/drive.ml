type kind = Read | Write

(* [remaining.(0 .. n_remaining - 1)] are the pages not yet served, in
   request order; served pages are compacted out in place, so coalescing
   never copies the page set. *)
type request = {
  kind : kind;
  remaining : int array;
  mutable n_remaining : int;
  extra_transfers : int;
  on_complete : unit -> unit;
}

(* The queue is a growable ring of requests (FCFS; index 0 is oldest).
   A saturated drive — the log disk of Table 3 — holds hundreds of
   queued requests, so the queue must support O(1) append and O(1)
   length; the list representation this replaces allocated a full copy
   of the queue on every submit. *)
type t = {
  engine : Dbm_sim.Engine.t;
  params : Params.t;
  layout : Layout.t;
  name : string;
  coalesce : bool;
  cyl_of : int -> int;
  mutable q : request array;  (* ring; capacity is a power of two *)
  mutable q_first : int;
  mutable q_len : int;
  mutable busy : bool;
  mutable head_cylinder : int;
  busy_acc : Dbm_util.Stats.Busy.t;
  qlen : Dbm_util.Stats.Timeweighted.t;
  mutable accesses : int;
  mutable pages : int;
}

let dummy_request =
  { kind = Read; remaining = [||]; n_remaining = 0; extra_transfers = 0; on_complete = ignore }

let create engine ~params ~layout ~name ?(coalesce = true) () =
  {
    engine;
    params;
    layout;
    name;
    coalesce;
    cyl_of = Layout.cylinder_fn params layout;
    q = Array.make 16 dummy_request;
    q_first = 0;
    q_len = 0;
    busy = false;
    head_cylinder = 0;
    busy_acc = Dbm_util.Stats.Busy.create ();
    qlen =
      Dbm_util.Stats.Timeweighted.with_clock
        ~clock:(Dbm_sim.Engine.clock_cell engine)
        ~t0:(Dbm_sim.Engine.now engine) ();
    accesses = 0;
    pages = 0;
  }

let name t = t.name
let params t = t.params
let queue_length t = t.q_len
let busy t = t.busy
let access_count t = t.accesses
let pages_transferred t = t.pages
let utilization t =
  Dbm_util.Stats.Busy.utilization t.busy_acc ~elapsed:(Dbm_sim.Engine.now t.engine) ~servers:1

let mean_queue_length t = Dbm_util.Stats.Timeweighted.mean t.qlen ~now:(Dbm_sim.Engine.now t.engine)

let q_get t i = t.q.((t.q_first + i) land (Array.length t.q - 1))
let q_set t i r = t.q.((t.q_first + i) land (Array.length t.q - 1)) <- r

let q_push t r =
  let cap = Array.length t.q in
  if t.q_len = cap then begin
    let q' = Array.make (2 * cap) dummy_request in
    for i = 0 to t.q_len - 1 do
      q'.(i) <- t.q.((t.q_first + i) land (cap - 1))
    done;
    t.q <- q';
    t.q_first <- 0
  end;
  q_set t t.q_len r;
  t.q_len <- t.q_len + 1

let note_queue t = Dbm_util.Stats.Timeweighted.tick t.qlen ~level:t.q_len

(* One conventional access per page; arm position carried along.
   Serves (and consumes) the head request's whole page train. *)
let conventional_service t ~extra_transfers (head : request) =
  let per_page_transfer =
    float_of_int (1 + extra_transfers) *. t.params.Params.page_transfer_ms
  in
  let n = head.n_remaining in
  head.n_remaining <- 0;
  let acc = [| 0.0 |] (* unboxed accumulator; a float ref would box every store *) in
  for i = 0 to n - 1 do
    let cyl = t.cyl_of head.remaining.(i) in
    let seek = Params.seek_time t.params ~from_cyl:t.head_cylinder ~to_cyl:cyl in
    t.head_cylinder <- cyl;
    acc.(0) <- acc.(0) +. seek +. Params.avg_rotational_latency t.params +. per_page_transfer
  done;
  t.accesses <- t.accesses + n;
  t.pages <- t.pages + n;
  acc.(0)

(* One parallel access: every page served lives in [target] cylinder. *)
let parallel_service t ~extra_transfers target served =
  let seek = Params.seek_time t.params ~from_cyl:t.head_cylinder ~to_cyl:target in
  t.head_cylinder <- target;
  t.accesses <- t.accesses + 1;
  t.pages <- t.pages + List.length served;
  let slots =
    Layout.slot_positions t.params t.layout served + (extra_transfers * List.length served)
  in
  seek
  +. Params.avg_rotational_latency t.params
  +. (float_of_int slots *. t.params.Params.page_transfer_ms)

(* Remove every fully-served request (FCFS order preserved for the
   rest), then fire the completions in FCFS order.  Callbacks run only
   after the queue is consistent: they may re-enter [submit]. *)
let finish_completed t =
  let n = t.q_len in
  let done_rev = ref [] in
  let w = ref 0 in
  for i = 0 to n - 1 do
    let r = q_get t i in
    if r.n_remaining = 0 then done_rev := r :: !done_rev
    else begin
      if !w < i then q_set t !w r;
      incr w
    end
  done;
  for i = !w to n - 1 do
    q_set t i dummy_request
  done;
  t.q_len <- !w;
  note_queue t;
  List.iter (fun r -> r.on_complete ()) (List.rev !done_rev)

let rec serve t =
  if (not t.busy) && t.q_len > 0 then begin
    let head = q_get t 0 in
    let service =
      if not t.params.Params.parallel_access then
        conventional_service t ~extra_transfers:head.extra_transfers head
      else if head.n_remaining = 0 then 0.0
      else begin
        let target = t.cyl_of head.remaining.(0) in
        (* Absorb, from every queued same-kind request, the pages that
           live in the target cylinder (compacting the misses in
           place — only the served pages are collected). *)
        let served = ref [] in
        let absorb r =
          if r.kind = head.kind then begin
            let n = r.n_remaining in
            let w = ref 0 in
            for i = 0 to n - 1 do
              let p = Array.unsafe_get r.remaining i in
              if t.cyl_of p = target then served := p :: !served
              else begin
                Array.unsafe_set r.remaining !w p;
                incr w
              end
            done;
            r.n_remaining <- !w
          end
        in
        if t.coalesce then
          for i = 0 to t.q_len - 1 do
            absorb (q_get t i)
          done
        else absorb head;
        parallel_service t ~extra_transfers:head.extra_transfers target !served
      end
    in
    t.busy <- true;
    Dbm_util.Stats.Busy.add_busy t.busy_acc service;
    ignore
      (Dbm_sim.Engine.schedule t.engine ~delay:service (fun () ->
           t.busy <- false;
           finish_completed t;
           serve t))
  end

let submit t ?(extra_transfers = 0) kind ~pages on_complete =
  if pages = [] then
    ignore (Dbm_sim.Engine.schedule t.engine ~delay:0.0 on_complete)
  else begin
    let remaining = Array.of_list pages in
    q_push t
      { kind; remaining; n_remaining = Array.length remaining; extra_transfers; on_complete };
    note_queue t;
    serve t
  end
