(** Mapping from logical page numbers to physical disk locations.

    [Sequential] keeps logically adjacent pages physically adjacent
    (slot-major within a track, track-major within a cylinder), the
    clustering assumption of Section 4.2.  [Scrambled] applies a
    deterministic pseudo-random permutation first, modelling the
    shadow-mechanism drift in which "logically adjacent pages are
    scattered all over the data disk" (Table 7). *)

type loc = { cylinder : int; track : int; slot : int }

type t =
  | Sequential
  | Scrambled of int  (** permutation seed *)

val locate : Params.t -> t -> page:int -> loc
(** Physical location of logical [page].  Pages wrap modulo the disk's
    capacity, so any non-negative page number is valid.
    @raise Invalid_argument on a negative page number. *)

val cylinder_fn : Params.t -> t -> int -> int
(** [cylinder_fn params layout] resolves the layout's parameters once
    and returns a function computing [(locate params layout ~page).cylinder]
    without allocating.  Partially apply it outside per-page loops. *)

val same_cylinder : Params.t -> t -> int -> int -> bool

val slot_positions : Params.t -> t -> int list -> int
(** Number of distinct rotational slot positions covered by the given
    pages: the transfer-count term of a parallel-access access. *)

val cylinders_spanned : Params.t -> t -> int list -> int list
(** Sorted list of distinct cylinders covered by the given pages. *)

val permutation : seed:int -> n:int -> int -> int
(** [permutation ~seed ~n] is a deterministic bijection on [0, n)
    (an affine map with a large multiplier) that scatters adjacent
    inputs far apart.  Used to scramble data pages within a zone.
    @raise Invalid_argument on inputs outside [0, n). *)

val permutation_fn : seed:int -> n:int -> int -> int
(** Same bijection as {!permutation} with the coefficients resolved
    once at partial application, so per-input calls skip the shared
    coefficient cache (and its lock). *)

val feed_digest : Dbm_util.Digest.t -> t -> unit
(** Feed the layout (constructor and seed) into a run digest. *)
