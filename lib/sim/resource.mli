(** A pool of identical FCFS servers driven by the event {!Engine}.

    Jobs carry a service time and a completion callback.  When a server
    is free the oldest queued job is started; its callback fires when the
    service time elapses.  The pool records busy time (for utilization)
    and the time-weighted queue length, which is how the paper reports
    processor and disk statistics (Tables 2 and 5).

    The completion path is shared across jobs (one pre-allocated finish
    closure per server) and the waiting line is a growable ring buffer,
    so submitting to an idle server allocates nothing beyond the
    caller's continuation. *)

type t

val create : Engine.t -> name:string -> servers:int -> unit -> t
(** @raise Invalid_argument if [servers <= 0]. *)

val reset : t -> name:string -> servers:int -> unit
(** Return the pool to its just-created state under a (possibly) new
    name and server count, reusing the grown arrays: idle-server stack
    refilled, waiting ring emptied (continuations unpinned), statistics
    restarted at the engine's current time.  Reset the shared engine
    {e first} so the time origin is the new run's zero.
    @raise Invalid_argument if [servers <= 0]. *)

val name : t -> string

val servers : t -> int

val submit : t -> service:float -> (unit -> unit) -> unit
(** [submit t ~service k] enqueues a job that will occupy one server for
    [service] ms and then call [k].
    @raise Invalid_argument if [service] is negative or not finite. *)

val busy_servers : t -> int

val queue_length : t -> int
(** Jobs waiting (excluding those in service). *)

val completed : t -> int

val utilization : t -> float
(** Busy time divided by [servers * now], as of the engine's current
    time. *)

val mean_queue_length : t -> float
(** Time-weighted mean number of waiting jobs, as of now. *)
