(* Per-domain scratch arena.

   Consecutive runs on one domain reuse one engine (event records, SoA
   heap arrays) and its resource pools (server arrays, waiting rings)
   instead of rebuilding them on the major heap for every run.  The
   arena lives in domain-local storage, so pool workers each get their
   own and no synchronisation is needed.

   Determinism: [begin_run] resets the engine and every [resource] call
   resets the pool it hands out, restoring exactly the just-created
   observable state (see [Engine.reset] / [Resource.reset]); every run
   then reinitialises all remaining state from its own PRNG seed.  The
   only thing recycling changes is array capacities, which no simulation
   path observes.

   Resource pools are cached by request order within a run, not by name:
   a run that asks for "query-processors" then "foo" reuses the pools
   the previous run requested first and second.  That is correct because
   [Resource.reset] re-imposes the requested name/server count whatever
   the pool was before. *)

type t = {
  engine : Engine.t;
  mutable resources : Resource.t array; (* cached pools, in first-request order *)
  mutable n_resources : int;
  mutable cursor : int; (* next pool to hand out in the current run *)
  mutable runs : int;
}

let create () = { engine = Engine.create (); resources = [||]; n_resources = 0; cursor = 0; runs = 0 }

(* Switchable so benchmarks can measure fresh-state allocation against
   recycled-state allocation in one process.  When disabled, [current]
   hands out a throwaway arena, which is exactly the pre-arena
   behaviour: every run builds fresh state. *)
let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let recycling_enabled () = Atomic.get enabled

let key = Domain.DLS.new_key create

let current () = if Atomic.get enabled then Domain.DLS.get key else create ()

let begin_run t =
  t.runs <- t.runs + 1;
  t.cursor <- 0;
  Engine.reset t.engine;
  t.engine

let engine t = t.engine

let runs_started t = t.runs

let resource t ~name ~servers =
  if t.cursor < t.n_resources then begin
    let r = t.resources.(t.cursor) in
    t.cursor <- t.cursor + 1;
    Resource.reset r ~name ~servers;
    r
  end
  else begin
    let r = Resource.create t.engine ~name ~servers () in
    if t.n_resources = Array.length t.resources then begin
      let cap = Array.length t.resources in
      let nr = Array.make (if cap = 0 then 4 else 2 * cap) r in
      Array.blit t.resources 0 nr 0 cap;
      t.resources <- nr
    end;
    t.resources.(t.n_resources) <- r;
    t.n_resources <- t.n_resources + 1;
    t.cursor <- t.n_resources;
    r
  end
