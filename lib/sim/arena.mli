(** Per-domain scratch arena recycling simulator state across runs.

    Building a run's engine and resource pools from scratch costs major
    heap: the event-record pool, the SoA agenda arrays, the per-server
    arrays and waiting rings all live past the minor collector.  An
    arena keeps one set of these per domain (in domain-local storage)
    and resets them between runs, so the suite's steady state allocates
    almost nothing per run on the major heap.

    Protocol, once per run, on the domain that executes the run:
    {[
      let arena = Arena.current () in
      let engine = Arena.begin_run arena in
      let qps = Arena.resource arena ~name:"query-processors" ~servers () in
      ...
    ]}

    Determinism: {!begin_run} / {!resource} restore exactly the
    just-created observable state ({!Engine.reset}, {!Resource.reset}),
    and every run reinitialises everything else from its own PRNG seed,
    so a recycled run is byte-identical to a fresh-state run. *)

type t

val create : unit -> t
(** A standalone arena (not bound to any domain); {!current} is the
    normal entry point. *)

val current : unit -> t
(** The calling domain's arena.  When recycling is disabled
    ({!set_enabled}[ false]) this returns a fresh throwaway arena
    instead, reproducing the build-everything-per-run behaviour. *)

val begin_run : t -> Engine.t
(** Start a run: resets the recycled engine (clock 0, empty agenda, all
    handles stale) and rewinds the resource cursor.  Must be called
    before {!resource}. *)

val engine : t -> Engine.t
(** The arena's engine, as last reset by {!begin_run}. *)

val resource : t -> name:string -> servers:int -> Resource.t
(** Hand out the next recycled resource pool (in first-request order),
    reset to [name]/[servers]; creates and caches one the first time a
    run asks for more pools than any previous run did. *)

val runs_started : t -> int
(** How many {!begin_run}s this arena has served (recycling telemetry;
    a throwaway arena reports 1). *)

val set_enabled : bool -> unit
(** Globally enable/disable recycling (default enabled).  Disabling
    makes {!current} return throwaway arenas so benchmarks can measure
    the fresh-state baseline in the same process. *)

val recycling_enabled : unit -> bool
