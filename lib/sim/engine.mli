(** Discrete-event simulation engine.

    The engine keeps an agenda of timed callbacks ordered by
    [(time, sequence number)]; events scheduled for the same instant fire
    in the order in which they were scheduled, which makes every run
    deterministic.  Time is a [float] in milliseconds, matching the unit
    used throughout the paper.

    The engine recycles event records through a free-list, so a steady
    stream of schedule/fire cycles allocates no minor words beyond the
    caller's own closures. *)

type t

type event_id
(** Handle for cancelling a scheduled event.  Handles are
    generation-tagged: once the event has fired or its cancellation has
    been processed, the handle goes permanently stale and any further
    [cancel] through it is a no-op — even after the engine recycles the
    underlying record for a new event. *)

val create : unit -> t

val reset : t -> unit
(** Return the engine to its just-created state — clock at 0, empty
    agenda, zero counters — while keeping the heap arrays and recycled
    event records for the next run (no major-heap churn).  Every
    outstanding {!event_id} goes permanently stale.  After [reset] the
    engine behaves observationally like [create ()]: event ordering is
    by [(time, seq)] only, so reusing records cannot change any run. *)

val now : t -> float
(** Current simulation time (ms).  Starts at [0.0]. *)

val clock_cell : t -> float array
(** The engine's one-cell clock; [ (clock_cell t).(0) = now t ] at all
    times.  Read-only for callers: it exists so hot-path statistics
    (e.g. {!Dbm_util.Stats.Timeweighted.with_clock}) can read the time
    without a boxing function call.  Writing to it is undefined. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] fires [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** [schedule_at t ~time f] fires [f] at absolute [time].
    @raise Invalid_argument if [time] is in the past or not finite. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val events_fired : t -> int
(** Total events fired since [create] (cancelled events never count). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Execute events in order until the agenda is empty, [until] is
    reached (events at exactly [until] still fire), or [max_events] have
    fired.  May be called repeatedly. *)

val step : t -> bool
(** Execute the single next event; [false] when the agenda is empty. *)
