type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type event_id = event

(* The agenda is a monomorphic binary min-heap inlined here: the generic
   [Dbm_util.Heap] pays a closure call per comparison, which dominates the
   simulator's inner loop.  Ordering is [(time, seq)] so simultaneous
   events fire in scheduling order.  Slots at or above [size] always hold
   [dummy] so dead events (and the closures they capture) are never
   pinned by the slack capacity. *)

let dummy = { time = neg_infinity; seq = -1; action = ignore; cancelled = true }

type t = {
  mutable data : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable live : int; (* scheduled and not cancelled/fired *)
}

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let create () = { data = [||]; size = 0; clock = 0.0; next_seq = 0; live = 0 }

let now t = t.clock

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ndata = Array.make (if cap = 0 then 16 else 2 * cap) dummy in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let heap_push t ev =
  grow t;
  t.data.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let heap_pop t =
  let top = t.data.(0) in
  t.size <- t.size - 1;
  t.data.(0) <- t.data.(t.size);
  t.data.(t.size) <- dummy;
  if t.size > 0 then sift_down t 0;
  top

(* Drop cancelled events sitting on top of the agenda: they must neither
   fire nor hide what the next live event is. *)
let rec drop_cancelled t =
  if t.size > 0 && t.data.(0).cancelled then begin
    ignore (heap_pop t);
    drop_cancelled t
  end

let schedule_at t ~time action =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let ev = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  heap_push t ev;
  ev

let schedule t ~delay action =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let fire t =
  let ev = heap_pop t in
  t.clock <- ev.time;
  t.live <- t.live - 1;
  ev.action ()

let step t =
  drop_cancelled t;
  if t.size = 0 then false
  else begin
    fire t;
    true
  end

let run ?until ?max_events t =
  let fired = ref 0 in
  let within_budget () =
    match max_events with
    | None -> true
    | Some m -> !fired < m
  in
  (* A cancelled top is drained first so a past-horizon live event behind
     it can never fire: the horizon check always sees the next event that
     would actually run. *)
  let next_fires () =
    drop_cancelled t;
    t.size > 0
    && match until with None -> true | Some horizon -> t.data.(0).time <= horizon
  in
  while within_budget () && next_fires () do
    fire t;
    incr fired
  done
