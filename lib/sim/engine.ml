(* Allocation-free event core.

   Two ideas keep steady-state stepping at ~zero minor words per event:

   - Event records are recycled through an intrusive free-list: a record
     is released the moment it leaves the agenda (fired or dropped after
     cancellation) and the very next [schedule] reuses it, so a running
     simulation stops allocating records once its live-event high-water
     mark is reached.  Handles are generation-tagged integers (no
     wrapper allocation), so a stale handle to a recycled record can
     never cancel the record's new incarnation.

   - The agenda is a monomorphic binary min-heap split into a
     structure-of-arrays: the [float] keys live in their own
     [float array] (unboxed reads and stores), the payload records in a
     parallel array.  Ordering is [(time, seq)] so simultaneous events
     fire in scheduling order. *)

type event = {
  idx : int; (* position in [recs]; immutable identity of the record *)
  mutable gen : int; (* bumped on every release; stale handles miss *)
  mutable seq : int;
  mutable action : unit -> unit;
  mutable cancelled : bool;
}

(* [(gen lsl idx_bits) lor idx].  24 bits of index bounds the live-event
   high-water mark at ~16M (far beyond any run here) and leaves 38+ bits
   of generation before wraparound. *)
type event_id = int

let idx_bits = 24
let idx_mask = (1 lsl idx_bits) - 1

let dummy = { idx = -1; gen = 0; seq = -1; action = ignore; cancelled = true }

type t = {
  mutable times : float array; (* heap keys, parallel to [evs] *)
  mutable evs : event array;
  mutable size : int;
  clock : float array; (* one cell: stores stay unboxed, unlike a mutable
                          float field of this mixed record *)
  mutable next_seq : int;
  mutable live : int; (* scheduled and not cancelled/fired *)
  mutable fired_count : int;
  mutable recs : event array; (* every record ever created, by [idx] *)
  mutable n_recs : int;
  mutable free : int array; (* stack of recyclable record indices *)
  mutable n_free : int;
}

let create () =
  {
    times = [||];
    evs = [||];
    size = 0;
    clock = [| 0.0 |];
    next_seq = 0;
    live = 0;
    fired_count = 0;
    recs = [||];
    n_recs = 0;
    free = [||];
    n_free = 0;
  }

(* Return the engine to its just-created state while keeping every
   array and event record for reuse: the agenda slots are cleared to
   [dummy] (dead actions and the closures they capture must not be
   pinned by the slack), the clock/sequence/live counters restart at
   zero, and the free stack is rebuilt over every record ever created
   with its generation bumped, so all outstanding handles go stale.
   After [reset] the engine is observationally identical to
   [create ()]: record identities differ, but scheduling order depends
   only on [(time, seq)], never on which record carries an event. *)
let reset t =
  for i = 0 to t.size - 1 do
    t.evs.(i) <- dummy
  done;
  t.size <- 0;
  t.clock.(0) <- 0.0;
  t.next_seq <- 0;
  t.live <- 0;
  t.fired_count <- 0;
  if Array.length t.free < t.n_recs then t.free <- Array.make (Array.length t.recs) 0;
  t.n_free <- 0;
  for i = 0 to t.n_recs - 1 do
    let ev = t.recs.(i) in
    ev.action <- ignore;
    ev.cancelled <- true;
    ev.gen <- ev.gen + 1;
    t.free.(t.n_free) <- i;
    t.n_free <- t.n_free + 1
  done

let now t = t.clock.(0)

let clock_cell t = t.clock

let pending t = t.live

let events_fired t = t.fired_count

(* ---- record pool ------------------------------------------------- *)

let acquire t =
  if t.n_free > 0 then begin
    t.n_free <- t.n_free - 1;
    t.recs.(t.free.(t.n_free))
  end
  else begin
    if t.n_recs = Array.length t.recs then begin
      let cap = Array.length t.recs in
      let nr = Array.make (if cap = 0 then 16 else 2 * cap) dummy in
      Array.blit t.recs 0 nr 0 cap;
      t.recs <- nr
    end;
    if t.n_recs > idx_mask then failwith "Engine: live-event limit exceeded";
    let ev = { idx = t.n_recs; gen = 0; seq = 0; action = ignore; cancelled = true } in
    t.recs.(t.n_recs) <- ev;
    t.n_recs <- t.n_recs + 1;
    ev
  end

(* Release a record back to the free stack.  Bumping [gen] invalidates
   every outstanding handle; dropping [action] unpins the closure. *)
let release t ev =
  ev.action <- ignore;
  ev.cancelled <- true;
  ev.gen <- ev.gen + 1;
  if t.n_free = Array.length t.free then begin
    let cap = Array.length t.free in
    let nf = Array.make (if cap = 0 then 16 else 2 * cap) 0 in
    Array.blit t.free 0 nf 0 cap;
    t.free <- nf
  end;
  t.free.(t.n_free) <- ev.idx;
  t.n_free <- t.n_free + 1

(* ---- heap -------------------------------------------------------- *)

(* The sifts use the hole technique (shift parents/children into the
   hole, place the moving element once) and unchecked array accesses.
   Every index is derived from [size], which only this module maintains,
   and the parent/child bounds are checked explicitly, so the accesses
   are in range by construction. *)

let grow t =
  let cap = Array.length t.evs in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ntimes = Array.make ncap 0.0 in
    Array.blit t.times 0 ntimes 0 t.size;
    t.times <- ntimes;
    (* Slots at or above [size] always hold [dummy] so dead events (and
       the closures they capture) are never pinned by the slack. *)
    let nevs = Array.make ncap dummy in
    Array.blit t.evs 0 nevs 0 t.size;
    t.evs <- nevs
  end

(* Insert [ev] at [time], opening the hole at the new last slot.  A new
   event carries the largest [seq] so far, so on a time tie it stays
   below its parent — exactly the (time, seq) order. *)
let heap_push t time ev =
  grow t;
  let times = t.times and evs = t.evs in
  let sq = ev.seq in
  let i = ref t.size in
  t.size <- t.size + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 2 in
    let ptm = Array.unsafe_get times p in
    if time < ptm || (time = ptm && sq < (Array.unsafe_get evs p).seq) then begin
      Array.unsafe_set times !i ptm;
      Array.unsafe_set evs !i (Array.unsafe_get evs p);
      i := p
    end
    else moving := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set evs !i ev

(* Remove the root; the caller has already read [times.(0)]/[evs.(0)].
   The former last element sinks from the root hole. *)
let remove_top t =
  let n = t.size - 1 in
  t.size <- n;
  let times = t.times and evs = t.evs in
  if n = 0 then Array.unsafe_set evs 0 dummy
  else begin
    let tm = Array.unsafe_get times n in
    let ev = Array.unsafe_get evs n in
    Array.unsafe_set evs n dummy;
    let sq = ev.seq in
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 in
      if l >= n then moving := false
      else begin
        let c =
          let r = l + 1 in
          if r < n then begin
            let ltm = Array.unsafe_get times l and rtm = Array.unsafe_get times r in
            if
              rtm < ltm
              || (rtm = ltm && (Array.unsafe_get evs r).seq < (Array.unsafe_get evs l).seq)
            then r
            else l
          end
          else l
        in
        let ctm = Array.unsafe_get times c in
        if ctm < tm || (ctm = tm && (Array.unsafe_get evs c).seq < sq) then begin
          Array.unsafe_set times !i ctm;
          Array.unsafe_set evs !i (Array.unsafe_get evs c);
          i := c
        end
        else moving := false
      end
    done;
    Array.unsafe_set times !i tm;
    Array.unsafe_set evs !i ev
  end

(* Drop cancelled events sitting on top of the agenda: they must neither
   fire nor hide what the next live event is. *)
let rec drop_cancelled t =
  if t.size > 0 then begin
    let ev = Array.unsafe_get t.evs 0 in
    if ev.cancelled then begin
      remove_top t;
      release t ev;
      drop_cancelled t
    end
  end

(* ---- public api -------------------------------------------------- *)

let schedule_at t ~time action =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock.(0) then invalid_arg "Engine.schedule_at: time in the past";
  let ev = acquire t in
  ev.seq <- t.next_seq;
  ev.action <- action;
  ev.cancelled <- false;
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  heap_push t time ev;
  (ev.gen lsl idx_bits) lor ev.idx

let schedule t ~delay action =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  schedule_at t ~time:(t.clock.(0) +. delay) action

let cancel t id =
  let idx = id land idx_mask in
  if idx < t.n_recs then begin
    let ev = t.recs.(idx) in
    (* The generation check makes a handle single-incarnation: once the
       event fires (or its cancelled record is dropped) the record's
       generation moves on and the stale handle is a no-op, even if the
       record has been recycled for an unrelated event. *)
    if ev.gen = id lsr idx_bits && not ev.cancelled then begin
      ev.cancelled <- true;
      t.live <- t.live - 1
    end
  end

(* Callers guarantee [t.size > 0]. *)
let fire t =
  let time = Array.unsafe_get t.times 0 in
  let ev = Array.unsafe_get t.evs 0 in
  remove_top t;
  t.clock.(0) <- time;
  t.live <- t.live - 1;
  t.fired_count <- t.fired_count + 1;
  let action = ev.action in
  (* Release before running the action: anything the action schedules
     reuses this record immediately, which is what makes steady-state
     chains allocation-free. *)
  release t ev;
  action ()

let step t =
  drop_cancelled t;
  if t.size = 0 then false
  else begin
    fire t;
    true
  end

(* A cancelled top is drained first so a past-horizon live event behind
   it can never fire: the horizon check always sees the next event that
   would actually run.  The four (until, max_events) combinations get
   their own loops so the common unbounded case tests nothing per
   iteration but the agenda itself. *)
let run ?until ?max_events t =
  match (until, max_events) with
  | None, None ->
    let live = ref true in
    while !live do
      drop_cancelled t;
      if t.size = 0 then live := false else fire t
    done
  | Some horizon, None ->
    let live = ref true in
    while !live do
      drop_cancelled t;
      if t.size > 0 && Array.unsafe_get t.times 0 <= horizon then fire t else live := false
    done
  | None, Some m ->
    let fired = ref 0 in
    let live = ref true in
    while !live && !fired < m do
      drop_cancelled t;
      if t.size = 0 then live := false
      else begin
        fire t;
        incr fired
      end
    done
  | Some horizon, Some m ->
    let fired = ref 0 in
    let live = ref true in
    while !live && !fired < m do
      drop_cancelled t;
      if t.size > 0 && Array.unsafe_get t.times 0 <= horizon then begin
        fire t;
        incr fired
      end
      else live := false
    done
