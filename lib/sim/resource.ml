(* The completion path is shared: each server slot carries one finish
   closure allocated at [create], and the job's continuation is parked in
   the slot for the duration of the service.  Submitting to an idle
   server therefore allocates nothing (beyond the caller's own
   continuation); only jobs that actually wait are materialised as
   records in the ring-buffer queue. *)

module Ring = Dbm_util.Ring

type job = { service : float; k : unit -> unit }

type t = {
  engine : Engine.t;
  name : string;
  servers : int;
  mutable queue : job Ring.t; (* waiting jobs; swapped for a bigger ring on overflow *)
  free_servers : int array; (* stack of idle server slots *)
  mutable n_free : int;
  slots : (unit -> unit) array; (* per-server parked continuation *)
  finishers : (unit -> unit) array; (* per-server completion events, allocated once *)
  mutable busy : int;
  busy_acc : Dbm_util.Stats.Busy.t;
  qlen : Dbm_util.Stats.Timeweighted.t;
  mutable completed : int;
}

let name t = t.name
let servers t = t.servers
let busy_servers t = t.busy
let queue_length t = Ring.length t.queue
let completed t = t.completed

let note_queue t =
  Dbm_util.Stats.Timeweighted.update t.qlen ~now:(Engine.now t.engine)
    ~level:(float_of_int (Ring.length t.queue))

(* Claim a server slot and schedule its (pre-allocated) finish event. *)
let start t ~service k =
  t.n_free <- t.n_free - 1;
  let i = t.free_servers.(t.n_free) in
  t.slots.(i) <- k;
  t.busy <- t.busy + 1;
  Dbm_util.Stats.Busy.add_busy t.busy_acc service;
  ignore (Engine.schedule t.engine ~delay:service t.finishers.(i))

let rec start_next t =
  if t.n_free > 0 && not (Ring.is_empty t.queue) then begin
    match Ring.pop t.queue with
    | None -> ()
    | Some job ->
      note_queue t;
      start t ~service:job.service job.k;
      start_next t
  end

let finish t i =
  t.busy <- t.busy - 1;
  t.completed <- t.completed + 1;
  let k = t.slots.(i) in
  t.slots.(i) <- ignore;
  (* free the server before running [k]: a submit from inside the
     continuation sees the slot as available, as it did when the
     bookkeeping ran before [job.k] in the per-job-closure design *)
  t.free_servers.(t.n_free) <- i;
  t.n_free <- t.n_free + 1;
  k ();
  start_next t

let create engine ~name ~servers () =
  if servers <= 0 then invalid_arg "Resource.create: servers must be positive";
  let t =
    {
      engine;
      name;
      servers;
      queue = Ring.create ~capacity:16 ();
      free_servers = Array.init servers (fun i -> servers - 1 - i);
      n_free = servers;
      slots = Array.make servers ignore;
      finishers = Array.make servers ignore;
      busy = 0;
      busy_acc = Dbm_util.Stats.Busy.create ();
      qlen = Dbm_util.Stats.Timeweighted.create ~t0:(Engine.now engine) ();
      completed = 0;
    }
  in
  for i = 0 to servers - 1 do
    t.finishers.(i) <- (fun () -> finish t i)
  done;
  t

let submit t ~service k =
  if not (Float.is_finite service) || service < 0.0 then
    invalid_arg "Resource.submit: negative or non-finite service time";
  if t.n_free > 0 && Ring.is_empty t.queue then begin
    (* Fast path: a server is idle and nobody is waiting, so the job
       never touches the queue.  The single stats update is equivalent
       to the slow path's push-then-pop pair (both are zero-width). *)
    note_queue t;
    start t ~service k
  end
  else begin
    if Ring.is_full t.queue then t.queue <- Ring.extend t.queue;
    Ring.push_exn t.queue { service; k };
    note_queue t;
    start_next t
  end

let utilization t =
  Dbm_util.Stats.Busy.utilization t.busy_acc ~elapsed:(Engine.now t.engine) ~servers:t.servers

let mean_queue_length t = Dbm_util.Stats.Timeweighted.mean t.qlen ~now:(Engine.now t.engine)
