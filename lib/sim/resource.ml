(* The completion path is shared: each server slot carries one finish
   closure allocated at [create], and the job's continuation is parked in
   the slot for the duration of the service.  Submitting to an idle
   server therefore allocates nothing (beyond the caller's own
   continuation), and a job that waits costs only two stores into the
   structure-of-arrays queue below — no job record, no option.

   The waiting queue is a circular buffer split by field: service times
   in a [float array] (unboxed stores and reads), continuations in a
   parallel closure array.  Together with [Timeweighted.tick] (which
   reads the engine clock from its unboxed cell instead of receiving a
   boxed [now] argument) this keeps the submit/finish cycle at a few
   words per event where the record-and-ring design cost ~17. *)

type t = {
  engine : Engine.t;
  mutable name : string;
  mutable servers : int;
  (* waiting jobs: circular buffer, capacity a power of two *)
  mutable q_service : float array;
  mutable q_k : (unit -> unit) array;
  mutable q_head : int;
  mutable q_len : int;
  mutable free_servers : int array; (* stack of idle server slots *)
  mutable n_free : int;
  mutable slots : (unit -> unit) array; (* per-server parked continuation *)
  mutable finishers : (unit -> unit) array; (* per-server completion events, allocated once *)
  mutable busy : int;
  busy_acc : Dbm_util.Stats.Busy.t;
  qlen : Dbm_util.Stats.Timeweighted.t;
  mutable completed : int;
}

let name t = t.name
let servers t = t.servers
let busy_servers t = t.busy
let queue_length t = t.q_len
let completed t = t.completed

let note_queue t = Dbm_util.Stats.Timeweighted.tick t.qlen ~level:t.q_len

(* Double the queue, unrolling the circular order so head restarts at
   zero.  Amortized over the growth that filled the old buffer. *)
let grow_queue t =
  let cap = Array.length t.q_service in
  let ncap = 2 * cap in
  let ns = Array.make ncap 0.0 in
  let nk = Array.make ncap ignore in
  let mask = cap - 1 in
  for i = 0 to t.q_len - 1 do
    let j = (t.q_head + i) land mask in
    ns.(i) <- t.q_service.(j);
    nk.(i) <- t.q_k.(j)
  done;
  t.q_service <- ns;
  t.q_k <- nk;
  t.q_head <- 0

(* Claim a server slot and schedule its (pre-allocated) finish event. *)
let start t ~service k =
  t.n_free <- t.n_free - 1;
  let i = t.free_servers.(t.n_free) in
  t.slots.(i) <- k;
  t.busy <- t.busy + 1;
  Dbm_util.Stats.Busy.add_busy t.busy_acc service;
  ignore (Engine.schedule t.engine ~delay:service t.finishers.(i))

let rec start_next t =
  if t.n_free > 0 && t.q_len > 0 then begin
    let mask = Array.length t.q_service - 1 in
    let h = t.q_head in
    let service = Array.unsafe_get t.q_service h in
    let k = t.q_k.(h) in
    t.q_k.(h) <- ignore (* unpin the closure while it runs *);
    t.q_head <- (h + 1) land mask;
    t.q_len <- t.q_len - 1;
    note_queue t;
    start t ~service k;
    start_next t
  end

let finish t i =
  t.busy <- t.busy - 1;
  t.completed <- t.completed + 1;
  let k = t.slots.(i) in
  t.slots.(i) <- ignore;
  (* free the server before running [k]: a submit from inside the
     continuation sees the slot as available, as it did when the
     bookkeeping ran before [job.k] in the per-job-closure design *)
  t.free_servers.(t.n_free) <- i;
  t.n_free <- t.n_free + 1;
  k ();
  start_next t

let create engine ~name ~servers () =
  if servers <= 0 then invalid_arg "Resource.create: servers must be positive";
  let t =
    {
      engine;
      name;
      servers;
      q_service = Array.make 16 0.0;
      q_k = Array.make 16 ignore;
      q_head = 0;
      q_len = 0;
      free_servers = Array.init servers (fun i -> servers - 1 - i);
      n_free = servers;
      slots = Array.make servers ignore;
      finishers = Array.make servers ignore;
      busy = 0;
      busy_acc = Dbm_util.Stats.Busy.create ();
      qlen =
        Dbm_util.Stats.Timeweighted.with_clock ~clock:(Engine.clock_cell engine)
          ~t0:(Engine.now engine) ();
      completed = 0;
    }
  in
  for i = 0 to servers - 1 do
    t.finishers.(i) <- (fun () -> finish t i)
  done;
  t

(* Return the pool to its just-created state, reusing every array the
   previous run grew.  The per-server arrays (and finish closures) are
   rebuilt only when the server count actually changes; the waiting ring
   keeps its capacity but unpins all parked continuations.  Callers must
   reset the shared engine first so the statistics restart at the new
   run's time origin. *)
let reset t ~name ~servers =
  if servers <= 0 then invalid_arg "Resource.reset: servers must be positive";
  t.name <- name;
  if servers <> t.servers then begin
    t.servers <- servers;
    t.free_servers <- Array.init servers (fun i -> servers - 1 - i);
    t.slots <- Array.make servers ignore;
    t.finishers <- Array.make servers ignore;
    for i = 0 to servers - 1 do
      t.finishers.(i) <- (fun () -> finish t i)
    done
  end
  else
    for i = 0 to servers - 1 do
      t.free_servers.(i) <- servers - 1 - i;
      t.slots.(i) <- ignore
    done;
  t.n_free <- servers;
  Array.fill t.q_k 0 (Array.length t.q_k) ignore;
  t.q_head <- 0;
  t.q_len <- 0;
  t.busy <- 0;
  t.completed <- 0;
  Dbm_util.Stats.Busy.reset t.busy_acc;
  Dbm_util.Stats.Timeweighted.reset ~t0:(Engine.now t.engine) t.qlen

let submit t ~service k =
  if not (Float.is_finite service) || service < 0.0 then
    invalid_arg "Resource.submit: negative or non-finite service time";
  if t.n_free > 0 && t.q_len = 0 then begin
    (* Fast path: a server is idle and nobody is waiting, so the job
       never touches the queue.  The single stats update is equivalent
       to the slow path's push-then-pop pair (both are zero-width). *)
    note_queue t;
    start t ~service k
  end
  else begin
    if t.q_len = Array.length t.q_service then grow_queue t;
    let mask = Array.length t.q_service - 1 in
    let i = (t.q_head + t.q_len) land mask in
    Array.unsafe_set t.q_service i service;
    t.q_k.(i) <- k;
    t.q_len <- t.q_len + 1;
    note_queue t;
    start_next t
  end

let utilization t =
  Dbm_util.Stats.Busy.utilization t.busy_acc ~elapsed:(Engine.now t.engine) ~servers:t.servers

let mean_queue_length t = Dbm_util.Stats.Timeweighted.mean t.qlen ~now:(Engine.now t.engine)
